// Package load is a closed-loop HTTP load generator for the mediator
// query service: C workers each keep exactly one request in flight
// against POST /v1/query until the duration elapses, and the merged
// per-request latencies yield throughput, quantiles and shed rate.
// Closed-loop load measures the service's capacity honestly — an open
// loop would pile unbounded queueing delay onto every sample once the
// offered rate passes capacity.
//
// Both cmd/loadgen and the benchrunner serve experiment drive this
// package, so the numbers in BENCH_serve.json and an operator's ad-hoc
// run are produced by the same loop.
package load

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Request mirrors the service's query request body (kept local so the
// generator can target any medd without importing the server).
type Request struct {
	Query     string   `json:"query"`
	Vars      []string `json:"vars,omitempty"`
	Planned   bool     `json:"planned,omitempty"`
	NoCache   bool     `json:"no_cache,omitempty"`
	TimeoutMs int      `json:"timeout_ms,omitempty"`
}

// Config describes one closed-loop run.
type Config struct {
	// BaseURL of the service, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Requests are issued round-robin per worker.
	Requests []Request
	// Concurrency is the number of closed-loop workers.
	Concurrency int
	// Duration of the run.
	Duration time.Duration
	// Client overrides the HTTP client (nil = a fresh one without
	// keep-alive reuse limits).
	Client *http.Client
	// Ctx optionally bounds the run externally.
	Ctx context.Context
	// APIKey is sent as the X-API-Key header on every request,
	// identifying the run's tenant to the service (empty = none, i.e.
	// the default tenant).
	APIKey string
}

// Stats is the merged outcome of one run.
type Stats struct {
	Concurrency int
	DurationMs  int64
	Requests    int64
	OK          int64
	CacheHits   int64
	Shed        int64   // 503
	Timeouts    int64   // 504
	Budget      int64   // 422, evaluation budget exceeded
	ClientErrs  int64   // transport-level failures
	OtherHTTP   int64   // any remaining status
	Throughput  float64 // completed (OK) per second
	ShedRate    float64 // shed / issued
	P50Ms       float64
	P90Ms       float64
	P99Ms       float64
	MaxMs       float64
}

type workerResult struct {
	stats Stats
	lats  []time.Duration
}

// Run drives the closed loop and merges the results.
func Run(cfg Config) (Stats, error) {
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 1
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	if len(cfg.Requests) == 0 {
		return Stats{}, errors.New("load: no requests configured")
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	ctx := cfg.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	bodies := make([][]byte, len(cfg.Requests))
	for i, r := range cfg.Requests {
		b, err := json.Marshal(r)
		if err != nil {
			return Stats{}, err
		}
		bodies[i] = b
	}
	url := cfg.BaseURL + "/v1/query"

	results := make([]workerResult, cfg.Concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := &results[w]
			for i := w; ; i++ {
				select {
				case <-ctx.Done():
					return
				default:
				}
				body := bodies[i%len(bodies)]
				t0 := time.Now()
				status, hit, err := oneRequest(ctx, client, url, cfg.APIKey, body)
				lat := time.Since(t0)
				res.stats.Requests++
				switch {
				case err != nil:
					// A request cut short by the run deadline is not a
					// service failure.
					if ctx.Err() != nil {
						res.stats.Requests--
						return
					}
					res.stats.ClientErrs++
				case status == http.StatusOK:
					res.stats.OK++
					res.lats = append(res.lats, lat)
					if hit {
						res.stats.CacheHits++
					}
				case status == http.StatusServiceUnavailable:
					res.stats.Shed++
				case status == http.StatusGatewayTimeout:
					res.stats.Timeouts++
				case status == http.StatusUnprocessableEntity:
					res.stats.Budget++
				default:
					res.stats.OtherHTTP++
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	out := Stats{Concurrency: cfg.Concurrency, DurationMs: elapsed.Milliseconds()}
	var lats []time.Duration
	for i := range results {
		s := results[i].stats
		out.Requests += s.Requests
		out.OK += s.OK
		out.CacheHits += s.CacheHits
		out.Shed += s.Shed
		out.Timeouts += s.Timeouts
		out.Budget += s.Budget
		out.ClientErrs += s.ClientErrs
		out.OtherHTTP += s.OtherHTTP
		lats = append(lats, results[i].lats...)
	}
	if secs := elapsed.Seconds(); secs > 0 {
		out.Throughput = float64(out.OK) / secs
	}
	if out.Requests > 0 {
		out.ShedRate = float64(out.Shed) / float64(out.Requests)
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		out.P50Ms = ms(quantile(lats, 0.50))
		out.P90Ms = ms(quantile(lats, 0.90))
		out.P99Ms = ms(quantile(lats, 0.99))
		out.MaxMs = ms(lats[len(lats)-1])
	}
	return out, nil
}

// oneRequest issues one query and reports (status, cache-hit, err).
func oneRequest(ctx context.Context, client *http.Client, url, apiKey string, body []byte) (int, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	if apiKey != "" {
		req.Header.Set("X-API-Key", apiKey)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, false, err
	}
	defer resp.Body.Close()
	var out struct {
		Cached bool `json:"cached"`
	}
	// Drain the body fully so the connection is reusable; the decode
	// error is irrelevant for non-200 replies.
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, out.Cached, nil
}

// quantile picks the q-th latency from a sorted slice.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }

// String renders the stats as one report line.
func (s Stats) String() string {
	return fmt.Sprintf("c=%d: %d req in %dms, %.0f ok/s, hits %d, shed %d (%.1f%%), timeouts %d, budget %d, errs %d, p50 %.2fms p90 %.2fms p99 %.2fms",
		s.Concurrency, s.Requests, s.DurationMs, s.Throughput, s.CacheHits,
		s.Shed, s.ShedRate*100, s.Timeouts, s.Budget, s.ClientErrs, s.P50Ms, s.P90Ms, s.P99Ms)
}

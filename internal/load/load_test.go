package load

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// queryStub answers /v1/query with a scripted rotation of outcomes so
// every Stats bucket fills: ok, cached ok, shed, timeout, budget, and
// an unclassified status.
func queryStub(t *testing.T) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/v1/query" {
			t.Errorf("unexpected request %s %s", r.Method, r.URL.Path)
		}
		var req Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Query == "" {
			t.Errorf("bad request body: %v", err)
		}
		switch n.Add(1) % 6 {
		case 0:
			w.WriteHeader(http.StatusServiceUnavailable)
		case 1:
			w.WriteHeader(http.StatusGatewayTimeout)
		case 2:
			w.WriteHeader(http.StatusUnprocessableEntity)
		case 3:
			w.WriteHeader(http.StatusTeapot)
		case 4:
			fmt.Fprint(w, `{"count": 1, "cached": true}`)
		default:
			fmt.Fprint(w, `{"count": 1}`)
		}
	}))
	t.Cleanup(ts.Close)
	return ts, &n
}

func TestRunFillsEveryBucket(t *testing.T) {
	ts, _ := queryStub(t)
	stats, err := Run(Config{
		BaseURL:     ts.URL,
		Requests:    []Request{{Query: "src_obj('SYNAPSE', O, C)", Vars: []string{"O", "C"}}},
		Concurrency: 4,
		Duration:    300 * time.Millisecond,
		APIKey:      "acme",
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Concurrency != 4 || stats.Requests == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	for name, v := range map[string]int64{
		"ok": stats.OK, "hits": stats.CacheHits, "shed": stats.Shed,
		"timeouts": stats.Timeouts, "budget": stats.Budget, "other": stats.OtherHTTP,
	} {
		if v == 0 {
			t.Errorf("%s bucket stayed empty: %+v", name, stats)
		}
	}
	if stats.Throughput <= 0 || stats.ShedRate <= 0 || stats.P99Ms < stats.P50Ms {
		t.Errorf("derived stats are off: %+v", stats)
	}
	if line := stats.String(); !strings.Contains(line, "c=4") {
		t.Errorf("String() = %q", line)
	}
}

func TestRunNoRequests(t *testing.T) {
	if _, err := Run(Config{BaseURL: "http://127.0.0.1:0"}); err == nil {
		t.Fatal("a run with no requests should fail")
	}
}

func TestRunCountsClientErrors(t *testing.T) {
	// A closed server: every dial fails at the transport level. The
	// zero Concurrency also exercises the 1-worker default.
	ts, _ := queryStub(t)
	ts.Close()
	stats, err := Run(Config{
		BaseURL:  ts.URL,
		Requests: []Request{{Query: "q(X)"}},
		Duration: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Concurrency != 1 || stats.ClientErrs == 0 || stats.OK != 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

// sseStub answers /v1/subscribe with a fixed event script and then
// holds the stream open until the client disconnects.
func sseStub(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/v1/subscribe" {
			t.Errorf("unexpected request %s %s", r.Method, r.URL.Path)
		}
		var req SubscribeRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Query == "" {
			t.Errorf("bad subscribe body: %v", err)
		}
		w.Header().Set("Content-Type", "text/event-stream")
		fl := w.(http.Flusher)
		fmt.Fprint(w, "event: snapshot\ndata: {\"vars\": [\"O\"], \"rows\": [[\"a\"]], \"count\": 1, \"seq\": 1}\n\n")
		fl.Flush()
		fmt.Fprint(w, ": hb\n")
		fl.Flush()
		fmt.Fprint(w, "event: delta\ndata: {\"added\": [[\"b\"]], \"count\": 2, \"seq\": 2}\n\n")
		fl.Flush()
		<-r.Context().Done()
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestSubscribeParsesEventStream(t *testing.T) {
	ts := sseStub(t)
	sub, err := Subscribe(nil, nil, ts.URL, "acme", SubscribeRequest{Query: "q(O)", Vars: []string{"O"}})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"snapshot", "comment", "delta"}
	for i, typ := range want {
		select {
		case ev := <-sub.Events:
			if ev.Type != typ {
				t.Fatalf("event %d: type %q, want %q", i, ev.Type, typ)
			}
			if ev.At.IsZero() {
				t.Errorf("event %d has no arrival time", i)
			}
			switch typ {
			case "snapshot":
				var s Snapshot
				if err := json.Unmarshal(ev.Data, &s); err != nil || s.Count != 1 || s.Seq != 1 {
					t.Errorf("snapshot payload %s: %+v err=%v", ev.Data, s, err)
				}
			case "comment":
				if string(ev.Data) != "hb" {
					t.Errorf("comment payload %q", ev.Data)
				}
			case "delta":
				var d AnswerDelta
				if err := json.Unmarshal(ev.Data, &d); err != nil || len(d.Added) != 1 || d.Seq != 2 {
					t.Errorf("delta payload %s: %+v err=%v", ev.Data, d, err)
				}
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("no %s event", typ)
		}
	}
	// A deliberate close is not a stream failure.
	sub.Close()
	if err := sub.Err(); err != nil {
		t.Fatalf("Err after deliberate close = %v", err)
	}
	if _, ok := <-sub.Events; ok {
		t.Fatal("Events should be closed after Close")
	}
}

func TestSubscribeNon200IsAnError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "subscription cap reached", http.StatusTooManyRequests)
	}))
	t.Cleanup(ts.Close)
	_, err := Subscribe(nil, nil, ts.URL, "", SubscribeRequest{Query: "q(O)"})
	if err == nil || !strings.Contains(err.Error(), "429") || !strings.Contains(err.Error(), "cap reached") {
		t.Fatalf("err = %v, want status and body", err)
	}
}

package serve

import (
	"context"
	"errors"
	"sync"
)

// Admission control: the daemon bounds the number of queries evaluating
// concurrently (each one costs a fan-out plus a datalog evaluation) and
// queues a bounded number of waiters per tenant behind the in-flight
// set. Freed slots are handed out by deficit round-robin across the
// tenant queues, so one tenant flooding the server with slow queries
// cannot starve the others: over a full rotation each backlogged
// tenant is granted slots in proportion to its configured weight,
// regardless of how many requests it has parked. When a tenant's own
// queue is full, its requests are shed immediately with a Retry-After
// instead of piling latency onto everyone else.

// errShed is returned by acquire when both the in-flight set and the
// caller's tenant queue are full; the HTTP layer maps it to 503 +
// Retry-After.
var errShed = errors.New("serve: overloaded, request shed")

// defaultTenant buckets requests that carry no API key, plus any key
// the operator has not listed: tenant identity is operator-defined, so
// arbitrary header values cannot mint unbounded queues, cache
// partitions, or metric series.
const defaultTenant = "default"

// waiter is one queued request. The slot channel has capacity 1 so a
// release can hand a slot to a waiter that is concurrently timing out
// without blocking; the loser of that race returns the slot.
type waiter struct {
	slot chan struct{}
}

// tenantQueue is one tenant's FIFO of waiters plus its deficit
// round-robin state. It lives in the ring exactly while it has
// waiters.
type tenantQueue struct {
	name    string
	waiters []*waiter
	weight  int
	deficit int
}

// admission is a bounded in-flight semaphore whose wait queue is
// partitioned per tenant and drained by deficit round-robin.
type admission struct {
	mu       sync.Mutex
	inflight int
	capacity int
	maxQueue int // per-tenant queue bound
	weights  map[string]int
	queues   map[string]*tenantQueue
	ring     []*tenantQueue // tenants with waiters, in service order
	cur      int            // ring index currently being drained
}

func newAdmission(capacity, maxQueue int, weights map[string]int) *admission {
	if capacity <= 0 {
		capacity = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &admission{
		capacity: capacity,
		maxQueue: maxQueue,
		weights:  weights,
		queues:   make(map[string]*tenantQueue),
	}
}

func (a *admission) weightOf(tenant string) int {
	if w, ok := a.weights[tenant]; ok && w > 0 {
		return w
	}
	return 1
}

// acquire blocks until a slot is free, the context ends, or the
// tenant's queue is full (errShed). A nil return means the caller
// holds a slot and must release() it.
func (a *admission) acquire(ctx context.Context, tenant string) error {
	a.mu.Lock()
	if a.inflight < a.capacity {
		a.inflight++
		a.mu.Unlock()
		return nil
	}
	q := a.queues[tenant]
	if q == nil {
		q = &tenantQueue{name: tenant, weight: a.weightOf(tenant)}
		a.queues[tenant] = q
	}
	if len(q.waiters) >= a.maxQueue {
		a.mu.Unlock()
		return errShed
	}
	if len(q.waiters) == 0 {
		a.ring = append(a.ring, q)
	}
	w := &waiter{slot: make(chan struct{}, 1)}
	q.waiters = append(q.waiters, w)
	a.mu.Unlock()

	select {
	case <-w.slot:
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		for i, queued := range q.waiters {
			if queued == w {
				q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
				if len(q.waiters) == 0 {
					a.dropFromRingLocked(q)
				}
				a.mu.Unlock()
				return ctx.Err()
			}
		}
		a.mu.Unlock()
		// Not in the queue anymore: a release handed us the slot while
		// the context was firing. Take it and give it back, so the hand-
		// off is never lost.
		<-w.slot
		a.release()
		return ctx.Err()
	}
}

// release returns a slot: the deficit round-robin scheduler picks the
// next waiter (if any) to inherit it, otherwise the in-flight count
// drops.
func (a *admission) release() {
	a.mu.Lock()
	if w := a.nextLocked(); w != nil {
		a.mu.Unlock()
		w.slot <- struct{}{}
		return
	}
	a.inflight--
	a.mu.Unlock()
}

// nextLocked pops the next waiter by deficit round-robin with unit
// cost per slot. The pointer stays on a tenant while it has both
// deficit and waiters, then moves on; arriving at a tenant with an
// exhausted deficit refills it from the tenant's weight. Over a full
// rotation a backlogged tenant of weight w is therefore granted w
// slots — weighted fair sharing at the admission gate. Called with
// a.mu held.
func (a *admission) nextLocked() *waiter {
	if len(a.ring) == 0 {
		return nil
	}
	if a.cur >= len(a.ring) {
		a.cur = 0
	}
	q := a.ring[a.cur]
	if q.deficit <= 0 {
		q.deficit = q.weight
	}
	q.deficit--
	w := q.waiters[0]
	q.waiters = q.waiters[1:]
	if len(q.waiters) == 0 {
		// Empty queues leave the ring so idle tenants cost nothing;
		// the deficit resets, preventing a returning tenant from
		// carrying over credit it never spent.
		a.ring = append(a.ring[:a.cur], a.ring[a.cur+1:]...)
		q.deficit = 0
		if a.cur >= len(a.ring) {
			a.cur = 0
		}
	} else if q.deficit <= 0 {
		a.cur++
		if a.cur >= len(a.ring) {
			a.cur = 0
		}
	}
	return w
}

// dropFromRingLocked removes a (now empty) tenant queue from the ring,
// keeping the round-robin pointer on the same neighbour. Called with
// a.mu held.
func (a *admission) dropFromRingLocked(q *tenantQueue) {
	for i, rq := range a.ring {
		if rq == q {
			a.ring = append(a.ring[:i], a.ring[i+1:]...)
			q.deficit = 0
			if i < a.cur {
				a.cur--
			}
			if a.cur >= len(a.ring) {
				a.cur = 0
			}
			return
		}
	}
}

// stats returns the current in-flight and total queued counts.
func (a *admission) stats() (inflight, queued int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, q := range a.ring {
		queued += len(q.waiters)
	}
	return a.inflight, queued
}

// tenantQueued returns the per-tenant queue depths (backlogged tenants
// only), for the metrics endpoint.
func (a *admission) tenantQueued() map[string]int {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]int, len(a.ring))
	for _, q := range a.ring {
		out[q.name] = len(q.waiters)
	}
	return out
}

package serve

import (
	"context"
	"errors"
	"sync"
)

// Admission control: the daemon bounds the number of queries evaluating
// concurrently (each one costs a fan-out plus a datalog evaluation) and
// queues a bounded number of waiters in FIFO order behind the in-flight
// set. When the queue is full too, the request is shed immediately with
// a Retry-After instead of piling latency onto everyone else.

// errShed is returned by acquire when both the in-flight set and the
// wait queue are full; the HTTP layer maps it to 503 + Retry-After.
var errShed = errors.New("serve: overloaded, request shed")

// waiter is one queued request. The slot channel has capacity 1 so a
// release can hand a slot to a waiter that is concurrently timing out
// without blocking; the loser of that race returns the slot.
type waiter struct {
	slot chan struct{}
}

// admission is a bounded in-flight semaphore with a FIFO wait queue.
type admission struct {
	mu       sync.Mutex
	inflight int
	capacity int
	queue    []*waiter
	maxQueue int
}

func newAdmission(capacity, maxQueue int) *admission {
	if capacity <= 0 {
		capacity = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &admission{capacity: capacity, maxQueue: maxQueue}
}

// acquire blocks until a slot is free, the context ends, or the queue
// is full (errShed). A nil return means the caller holds a slot and
// must release() it.
func (a *admission) acquire(ctx context.Context) error {
	a.mu.Lock()
	if a.inflight < a.capacity {
		a.inflight++
		a.mu.Unlock()
		return nil
	}
	if len(a.queue) >= a.maxQueue {
		a.mu.Unlock()
		return errShed
	}
	w := &waiter{slot: make(chan struct{}, 1)}
	a.queue = append(a.queue, w)
	a.mu.Unlock()

	select {
	case <-w.slot:
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		for i, q := range a.queue {
			if q == w {
				a.queue = append(a.queue[:i], a.queue[i+1:]...)
				a.mu.Unlock()
				return ctx.Err()
			}
		}
		a.mu.Unlock()
		// Not in the queue anymore: a release handed us the slot while
		// the context was firing. Take it and give it back, so the hand-
		// off is never lost.
		<-w.slot
		a.release()
		return ctx.Err()
	}
}

// release returns a slot: the oldest waiter (if any) inherits it,
// otherwise the in-flight count drops.
func (a *admission) release() {
	a.mu.Lock()
	if len(a.queue) > 0 {
		w := a.queue[0]
		a.queue = a.queue[1:]
		a.mu.Unlock()
		w.slot <- struct{}{}
		return
	}
	a.inflight--
	a.mu.Unlock()
}

// stats returns the current in-flight and queued counts.
func (a *admission) stats() (inflight, queued int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inflight, len(a.queue)
}

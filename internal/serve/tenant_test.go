package serve

import (
	"bytes"
	"context"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"modelmed/internal/datalog"
	"modelmed/internal/load"
	"modelmed/internal/mediator"
	"modelmed/internal/sources"
	"modelmed/internal/wrapper"
)

// newTenantFixture is newServeFixture with the engine options exposed
// (so tests can arm the gas meter) and optional per-call source latency
// (so planned queries have a service time worth fighting over).
func newTenantFixture(t *testing.T, cfg Config, eng datalog.Options, srcLatency time.Duration) *Server {
	t.Helper()
	m := mediator.New(sources.NeuroDM(), &mediator.Options{Engine: eng})
	for i, name := range []string{"alpha", "beta"} {
		model := sources.MustSyntheticSource(name, int64(40+i), 6, serveConcepts)
		w, err := wrapper.NewInMemory(model)
		if err != nil {
			t.Fatal(err)
		}
		var reg wrapper.Wrapper = w
		if srcLatency > 0 {
			reg = wrapper.NewFaulty(w, wrapper.FaultConfig{Latency: srcLatency})
		}
		if err := m.Register(reg); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.DefineView(serveViews); err != nil {
		t.Fatal(err)
	}
	return New(m, cfg)
}

// TestDRRWeightedOrder pins the grant order of the deficit round-robin
// scheduler: with tenant a at weight 2 and b at weight 1, six waiters
// each, the freed slot rotates a a b until a drains, then b finishes.
func TestDRRWeightedOrder(t *testing.T) {
	a := newAdmission(1, 16, map[string]int{"a": 2})
	ctx := context.Background()

	// Occupy the only slot so every subsequent acquire queues.
	if err := a.acquire(ctx, "a"); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	enqueue := func(tenant string, wantQueued int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := a.acquire(ctx, tenant); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, tenant)
			mu.Unlock()
			a.release()
		}()
		// Serialize enqueues so per-tenant FIFO order (and ring order:
		// a joined first) is deterministic.
		deadline := time.Now().Add(5 * time.Second)
		for {
			if _, queued := a.stats(); queued == wantQueued {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("waiter %d for %s never queued", wantQueued, tenant)
			}
			time.Sleep(time.Millisecond)
		}
	}
	n := 0
	for i := 0; i < 6; i++ {
		n++
		enqueue("a", n)
	}
	for i := 0; i < 6; i++ {
		n++
		enqueue("b", n)
	}

	a.release() // hand the held slot to the scheduler
	wg.Wait()

	want := []string{"a", "a", "b", "a", "a", "b", "a", "a", "b", "b", "b", "b"}
	if got := strings.Join(order, " "); got != strings.Join(want, " ") {
		t.Fatalf("grant order = %s, want %s", got, strings.Join(want, " "))
	}
	if inflight, queued := a.stats(); inflight != 0 || queued != 0 {
		t.Fatalf("after drain: inflight=%d queued=%d, want 0/0", inflight, queued)
	}
}

// TestSingleFlightLeaderCancelRecovery is the regression test for the
// leader-cancellation bug: when the flight leader dies of its own
// context, a follower whose context is still live must recompute and
// succeed rather than inherit the leader's cancellation (or spin on
// the dead flight).
func TestSingleFlightLeaderCancelRecovery(t *testing.T) {
	c := newAnswerCache(8)
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderIn := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := c.do(leaderCtx, defaultTenant, "k", nil, false, func() (cached, error) {
			close(leaderIn)
			<-leaderCtx.Done()
			return cached{}, leaderCtx.Err()
		})
		if err == nil {
			t.Error("leader compute returned its ctx error but do() reported nil")
		}
	}()
	<-leaderIn

	// The follower joins while the leader is computing, then the leader
	// is cancelled out from under it.
	followerDone := make(chan struct{})
	var fVal cached
	var fErr error
	go func() {
		defer close(followerDone)
		fVal, _, fErr = c.do(context.Background(), defaultTenant, "k", nil, false, computeOK(42))
	}()
	time.Sleep(20 * time.Millisecond) // let the follower reach the flight
	cancelLeader()

	select {
	case <-followerDone:
	case <-time.After(5 * time.Second):
		t.Fatal("follower never completed after leader cancellation (livelock on dead flight)")
	}
	if fErr != nil {
		t.Fatalf("follower err = %v, want nil (its own context was live)", fErr)
	}
	if len(fVal.PlanTrace) != 1 || fVal.PlanTrace[0] != "42" {
		t.Fatalf("follower got %+v, want its own computed value 42", fVal)
	}
	wg.Wait()

	// The recomputed value is cached for the next caller.
	if _, ok := c.get(defaultTenant, "k"); !ok {
		t.Fatal("follower's successful compute was not cached")
	}
}

// TestTenantCachePartitionIsolation: one tenant's cached answers and
// in-progress flights are invisible to another tenant's keys.
func TestTenantCachePartitionIsolation(t *testing.T) {
	c := newAnswerCache(8)
	ctx := context.Background()
	if _, out, err := c.do(ctx, "gold", "k", nil, false, computeOK(1)); err != nil || out != outcomeComputed {
		t.Fatalf("gold compute: out=%d err=%v", out, err)
	}
	if _, ok := c.get("free", "k"); ok {
		t.Fatal("tenant free sees tenant gold's cache entry")
	}
	if _, out, err := c.do(ctx, "free", "k", nil, false, computeOK(2)); err != nil || out != outcomeComputed {
		t.Fatalf("free compute: out=%d err=%v (should not hit gold's entry)", out, err)
	}
	v, ok := c.get("free", "k")
	if !ok || v.PlanTrace[0] != "2" {
		t.Fatalf("free entry = %+v ok=%v, want its own value 2", v, ok)
	}
	if g, _ := c.get("gold", "k"); g.PlanTrace[0] != "1" {
		t.Fatalf("gold entry = %+v, want 1 untouched", g)
	}
}

// crossProduct builds an n-way unconstrained join over the base
// relation — the canonical runaway query.
func crossProduct(n int) string {
	var b strings.Builder
	for i := 1; i <= n; i++ {
		if i > 1 {
			b.WriteString(", ")
		}
		b.WriteString("src_obj(S")
		b.WriteString(strings.Repeat("I", i))
		b.WriteString(", O")
		b.WriteString(strings.Repeat("I", i))
		b.WriteString(", C")
		b.WriteString(strings.Repeat("I", i))
		b.WriteString(")")
	}
	return b.String()
}

// TestTimeoutFreesAdmissionSlot is the regression test for the
// runaway-query bug: a query that blows its deadline must return 504
// AND give its admission slot back promptly — the evaluation stops
// with the context instead of squatting on the slot until fixpoint.
func TestTimeoutFreesAdmissionSlot(t *testing.T) {
	srv := newTenantFixture(t, Config{MaxInFlight: 1, MaxQueue: 8}, datalog.Options{Workers: 1}, 0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// ~12^5 interpreted join solutions: seconds of evaluation, cut off
	// at 150ms by the per-request deadline.
	code, _ := doQuery(t, ts, QueryRequest{
		Query: crossProduct(5), NoCache: true, TimeoutMs: 150,
	})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("runaway query: status %d, want 504", code)
	}

	// The single slot must already be free: a cheap query completes
	// fast, not after the runaway's natural multi-second fixpoint.
	start := time.Now()
	code, resp := doQuery(t, ts, QueryRequest{Query: "src_obj('alpha', O, C)", Vars: []string{"O", "C"}})
	if code != http.StatusOK {
		t.Fatalf("follow-up query: status %d, want 200", code)
	}
	if resp.Count == 0 {
		t.Fatal("follow-up query returned no rows")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("follow-up took %v: the timed-out query is still holding the slot", d)
	}
	if got := srv.Counters().Get("serve.timeouts"); got != 1 {
		t.Fatalf("serve.timeouts = %d, want 1", got)
	}
}

// TestBudgetExceededReturns422: a deadline-free runaway stopped by the
// gas meter maps to 422 with its own metric, and the engine keeps
// serving afterwards.
func TestBudgetExceededReturns422(t *testing.T) {
	srv := newTenantFixture(t, Config{}, datalog.Options{
		Workers: 1,
		Limits:  datalog.Limits{MaxDerivedFacts: 5000, MaxRounds: 1000},
	}, 0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Warm the materialization (well under the budget) so the runaway
	// measures only query gas.
	if code, _ := doQuery(t, ts, QueryRequest{Query: "src_obj('alpha', O, C)", Vars: []string{"O", "C"}}); code != http.StatusOK {
		t.Fatalf("warmup status %d", code)
	}

	// 12^4 > 20k join solutions against a 5k budget, no deadline.
	resp, body := postJSON(t, ts, "/v1/query", QueryRequest{Query: crossProduct(4), NoCache: true})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("runaway status %d, want 422\n%s", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte("budget")) {
		t.Fatalf("422 body does not mention the budget: %s", body)
	}
	if got := srv.Counters().Get("serve.budget_exceeded"); got != 1 {
		t.Fatalf("serve.budget_exceeded = %d, want 1", got)
	}
	if got := srv.Counters().Get("serve.tenant." + defaultTenant + ".budget_exceeded"); got != 1 {
		t.Fatalf("tenant budget counter = %d, want 1", got)
	}

	// The engine is intact: the same server answers a normal query.
	code, out := doQuery(t, ts, QueryRequest{Query: "src_obj('alpha', O, C)", Vars: []string{"O", "C"}, NoCache: true})
	if code != http.StatusOK || out.Count == 0 {
		t.Fatalf("post-budget query: status %d count %v", code, out)
	}
}

// TestEarlyBadRequestLogged is the regression test for the silent
// early-return paths: a request rejected before admission (bad JSON)
// must still produce a request log line.
func TestEarlyBadRequestLogged(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex // log.Logger serializes writes, but the test reads
	srv := newTenantFixture(t, Config{Log: log.New(syncWriter{&mu, &buf}, "", 0)}, datalog.Options{}, 0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	mu.Lock()
	logged := buf.String()
	mu.Unlock()
	if !strings.Contains(logged, "status=400") {
		t.Fatalf("early 400 left no log line; log output:\n%s", logged)
	}
	if !strings.Contains(logged, "tenant="+defaultTenant) {
		t.Fatalf("400 log line carries no tenant; log output:\n%s", logged)
	}
}

type syncWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (s syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// TestAbusiveTenantFairness is the chaos test: an abusive tenant
// flooding the gate at high concurrency with deadline-free runaway
// queries (stopped only by the gas meter) must not destroy the honest
// tenant's tail latency. The benchmark records the true ratio
// (BENCH_tenant.json); this test enforces a loose 3x ceiling so it
// stays green on noisy CI machines.
func TestAbusiveTenantFairness(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second load test")
	}
	const (
		honestKey = "honest"
		abuserKey = "abuser"
	)
	cfg := Config{
		MaxInFlight:    2,
		MaxQueue:       96,
		RequestTimeout: 10 * time.Second,
		TenantWeights:  map[string]int{honestKey: 3, abuserKey: 1},
	}
	eng := datalog.Options{Workers: 1, Limits: datalog.Limits{MaxDerivedFacts: 4000, MaxRounds: 1000}}
	honestReq := load.Request{
		Query: "src_obj('alpha', O, record)", Vars: []string{"O"}, Planned: true, NoCache: true,
	}
	runHonest := func(ts *httptest.Server) load.Stats {
		t.Helper()
		stats, err := load.Run(load.Config{
			BaseURL:     ts.URL,
			Requests:    []load.Request{honestReq},
			Concurrency: 8,
			Duration:    1500 * time.Millisecond,
			APIKey:      honestKey,
		})
		if err != nil {
			t.Fatal(err)
		}
		if stats.OK == 0 {
			t.Fatalf("honest tenant completed nothing: %s", stats.String())
		}
		return stats
	}

	// Baseline: honest tenant alone, planned queries paying a 10ms
	// source round-trip per request (well above one abusive
	// budget-kill, so slot-count fairness is also time fairness).
	srv := newTenantFixture(t, cfg, eng, 40*time.Millisecond)
	ts := httptest.NewServer(srv.Handler())
	doQuery(t, ts, QueryRequest{Query: "src_obj('alpha', O, C)", Vars: []string{"O", "C"}}) // warm materialization
	baseline := runHonest(ts)
	ts.Close()

	// Contended: fresh identical server, honest run races an abusive
	// tenant at 8x its concurrency issuing uncached, deadline-free
	// cross-products that each burn their full gas budget.
	srv = newTenantFixture(t, cfg, eng, 40*time.Millisecond)
	ts = httptest.NewServer(srv.Handler())
	defer ts.Close()
	doQuery(t, ts, QueryRequest{Query: "src_obj('alpha', O, C)", Vars: []string{"O", "C"}})

	var wg sync.WaitGroup
	var contended, abusive load.Stats
	var abuseErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		abusive, abuseErr = load.Run(load.Config{
			BaseURL:     ts.URL,
			Requests:    []load.Request{{Query: crossProduct(4), NoCache: true}},
			Concurrency: 64,
			Duration:    1500 * time.Millisecond,
			APIKey:      abuserKey,
		})
	}()
	contended = runHonest(ts)
	wg.Wait()
	if abuseErr != nil {
		t.Fatal(abuseErr)
	}
	if abusive.Budget == 0 {
		t.Fatalf("no abusive request was budget-killed — the chaos load is not chaotic: %s", abusive.String())
	}

	ratio := contended.P99Ms / baseline.P99Ms
	t.Logf("honest p99: %.1fms alone, %.1fms contended (ratio %.2fx); abusive: %s",
		baseline.P99Ms, contended.P99Ms, ratio, abusive.String())
	if ratio > 3.0 {
		t.Fatalf("honest p99 degraded %.2fx under abuse (%.1fms -> %.1fms), want <= 3x",
			ratio, baseline.P99Ms, contended.P99Ms)
	}
}

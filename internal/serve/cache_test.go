package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"modelmed/internal/mediator"
)

func mkcached(n int) cached {
	return cached{Ans: &mediator.Answer{Vars: []string{"N"}, Rows: nil}, PlanTrace: []string{fmt.Sprint(n)}}
}

func computeOK(n int) func() (cached, error) {
	return func() (cached, error) { return mkcached(n), nil }
}

func TestCacheHitAndLRUEviction(t *testing.T) {
	c := newAnswerCache(2)
	ctx := context.Background()
	mustDo := func(key string, n int) outcome {
		t.Helper()
		_, out, err := c.do(ctx, defaultTenant, key, nil, false, computeOK(n))
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	if out := mustDo("a", 1); out != outcomeComputed {
		t.Fatalf("first a: outcome %d, want computed", out)
	}
	if out := mustDo("a", 99); out != outcomeHit {
		t.Fatalf("second a: outcome %d, want hit", out)
	}
	mustDo("b", 2)
	// Touch a so b is the LRU victim when c arrives.
	mustDo("a", 99)
	mustDo("c", 3)
	if c.size() != 2 {
		t.Fatalf("size = %d, want 2", c.size())
	}
	if _, ok := c.get(defaultTenant, "b"); ok {
		t.Fatal("b survived eviction; LRU order not respected")
	}
	if _, ok := c.get(defaultTenant, "a"); !ok {
		t.Fatal("a evicted despite being recently used")
	}
}

func TestCacheErrorsAreNotCached(t *testing.T) {
	c := newAnswerCache(4)
	boom := errors.New("boom")
	_, _, err := c.do(context.Background(), defaultTenant, "k", nil, false, func() (cached, error) {
		return cached{}, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if c.size() != 0 {
		t.Fatal("failed computation was cached")
	}
}

func TestCacheSingleFlightCollapses(t *testing.T) {
	c := newAnswerCache(4)
	var computes atomic.Int64
	gate := make(chan struct{})
	compute := func() (cached, error) {
		computes.Add(1)
		<-gate
		return mkcached(7), nil
	}

	const followers = 5
	var wg sync.WaitGroup
	outcomes := make(chan outcome, followers+1)
	for i := 0; i < followers+1; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, out, err := c.do(context.Background(), defaultTenant, "k", nil, false, compute)
			if err != nil {
				t.Error(err)
				return
			}
			outcomes <- out
		}()
	}
	// Wait until the leader's flight is registered and all followers can
	// only be parked on it, then open the gate.
	for computes.Load() == 0 {
	}
	close(gate)
	wg.Wait()
	close(outcomes)

	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1 (single-flight)", n)
	}
	var computed int
	for out := range outcomes {
		if out == outcomeComputed {
			computed++
		}
	}
	// A follower scheduled after the leader published may see a plain
	// hit instead of a collapse; either way only one compute ran.
	if computed != 1 {
		t.Fatalf("outcomes: %d computed, want exactly 1", computed)
	}
}

func TestCacheFollowerCancellation(t *testing.T) {
	c := newAnswerCache(4)
	gate := make(chan struct{})
	started := make(chan struct{})
	go func() {
		_, _, _ = c.do(context.Background(), defaultTenant, "k", nil, false, func() (cached, error) {
			close(started)
			<-gate
			return mkcached(1), nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.do(ctx, defaultTenant, "k", nil, false, computeOK(2))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("follower err = %v, want context.Canceled", err)
	}
	close(gate)
}

func TestCacheInvalidateSource(t *testing.T) {
	c := newAnswerCache(8)
	ctx := context.Background()
	c.do(ctx, defaultTenant, "alpha-only", []string{"alpha"}, false, computeOK(1))
	c.do(ctx, defaultTenant, "beta-only", []string{"beta"}, false, computeOK(2))
	c.do(ctx, defaultTenant, "both", []string{"alpha", "beta"}, false, computeOK(3))
	c.do(ctx, defaultTenant, "global", nil, true, computeOK(4))

	dropped := c.invalidateSource("alpha")
	if dropped != 3 {
		t.Fatalf("dropped = %d, want 3 (alpha-only, both, global)", dropped)
	}
	if _, ok := c.get(defaultTenant, "beta-only"); !ok {
		t.Fatal("beta-only was dropped by an alpha invalidation")
	}
	if _, ok := c.get(defaultTenant, "alpha-only"); ok {
		t.Fatal("alpha-only survived an alpha invalidation")
	}
	if _, ok := c.get(defaultTenant, "global"); ok {
		t.Fatal("global entry survived a source invalidation")
	}
}

func TestCacheInvalidateAll(t *testing.T) {
	c := newAnswerCache(8)
	ctx := context.Background()
	c.do(ctx, defaultTenant, "a", []string{"alpha"}, false, computeOK(1))
	c.do(ctx, defaultTenant, "b", nil, true, computeOK(2))
	if n := c.invalidateAll(); n != 2 {
		t.Fatalf("invalidateAll = %d, want 2", n)
	}
	if c.size() != 0 {
		t.Fatal("cache not empty after invalidateAll")
	}
}

func TestCacheGenerationGuardsStaleInsert(t *testing.T) {
	// A flight that began before an invalidation must not publish its
	// (pre-delta) answer after it.
	c := newAnswerCache(8)
	gate := make(chan struct{})
	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _, _ = c.do(context.Background(), defaultTenant, "k", []string{"alpha"}, false, func() (cached, error) {
			close(started)
			<-gate
			return mkcached(1), nil
		})
	}()
	<-started
	c.invalidateSource("alpha")
	close(gate)
	<-done
	if c.size() != 0 {
		t.Fatal("stale flight result was cached across an invalidation")
	}
}

package serve

// Continuous queries over SSE: POST /v1/subscribe registers a standing
// query; the server pushes the initial answer set as a `snapshot`
// event and, whenever incremental maintenance changes the
// materialization (streamed source batches, /v1/delta, /v1/sync),
// re-evaluates and pushes the difference against the subscriber's
// last-sent answer set as a `delta` event. Wakeups are level-triggered
// and coalescing (a one-slot dirty channel per subscriber): a slow
// subscriber skips intermediate states and diffs straight to the
// newest one — drop-and-resnapshot, never an unbounded buffer. Large
// diffs degrade to a fresh `snapshot` event. Heartbeat comments keep
// intermediaries from reaping idle connections.
//
// Subscriptions ride the same per-tenant machinery as queries: each
// re-evaluation passes through the admission gate and the tenant's
// cache partition, and Config.MaxSubsPerTenant caps how many standing
// queries one tenant may hold open (429 beyond it).

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"modelmed/internal/mediator"
	"modelmed/internal/parser"
)

// SubscribeRequest is the POST /v1/subscribe body.
type SubscribeRequest struct {
	Query string   `json:"query"`
	Vars  []string `json:"vars,omitempty"`
	// HeartbeatMs overrides the heartbeat interval (default 15s,
	// floor 50ms) — mostly a test hook.
	HeartbeatMs int `json:"heartbeat_ms,omitempty"`
}

// SnapshotEvent is the data payload of an SSE `snapshot` event: the
// full current answer set.
type SnapshotEvent struct {
	Vars  []string   `json:"vars"`
	Rows  [][]string `json:"rows"`
	Count int        `json:"count"`
	Seq   int        `json:"seq"`
}

// DeltaEvent is the data payload of an SSE `delta` event: the change
// against the subscriber's last-sent answer set.
type DeltaEvent struct {
	Added   [][]string `json:"added,omitempty"`
	Removed [][]string `json:"removed,omitempty"`
	Count   int        `json:"count"`
	Seq     int        `json:"seq"`
}

// subscriber is one standing query's server-side state.
type subscriber struct {
	tenant string
	// dirty is the level-triggered wake signal (capacity 1): any
	// number of maintenance reports between two evaluations collapse
	// into one re-evaluation against the newest state.
	dirty chan struct{}
}

// addSubscriber registers a subscriber under its tenant's cap.
func (s *Server) addSubscriber(tenant string) (*subscriber, error) {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	if n := s.subTenants[tenant]; n >= s.cfg.maxSubsPerTenant() {
		return nil, fmt.Errorf("tenant %s: subscription cap %d reached", tenant, s.cfg.maxSubsPerTenant())
	}
	sub := &subscriber{tenant: tenant, dirty: make(chan struct{}, 1)}
	if s.subscribers == nil {
		s.subscribers = map[*subscriber]struct{}{}
	}
	s.subscribers[sub] = struct{}{}
	s.subTenants[tenant]++
	return sub, nil
}

func (s *Server) removeSubscriber(sub *subscriber) {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	if _, ok := s.subscribers[sub]; ok {
		delete(s.subscribers, sub)
		s.subTenants[sub.tenant]--
	}
}

// subscriberCount returns the number of open subscriptions.
func (s *Server) subscriberCount() int {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	return len(s.subscribers)
}

// ApplyReport folds one maintenance report into the serving layer:
// precise cache invalidation plus a wakeup for every standing query.
// Every subscriber is woken — one whose answer did not change
// re-evaluates into a cache hit and sends nothing. Returns the number
// of cache entries dropped. This is the hook the mediator feed loop
// (StartFeeds OnReport) and the delta/sync handlers share.
func (s *Server) ApplyReport(rep *mediator.DeltaReport) int {
	dropped := s.invalidateFor(rep)
	s.subMu.Lock()
	for sub := range s.subscribers {
		select {
		case sub.dirty <- struct{}{}:
		default: // already pending: coalesce
		}
	}
	s.subMu.Unlock()
	return dropped
}

// BeginDrain tells every open subscription to finish its stream and
// return, so http.Server.Shutdown is not held hostage by long-lived
// SSE connections. Call before Shutdown.
func (s *Server) BeginDrain() {
	s.drainOnce.Do(func() { close(s.drain) })
}

func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	tenant := s.tenantOf(r)
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	var req SubscribeRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		s.ctr.Add("serve.bad_requests", 1)
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("decode: %w", err))
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		s.ctr.Add("serve.bad_requests", 1)
		s.writeError(w, http.StatusBadRequest, errors.New("empty query"))
		return
	}
	body, aux, err := parser.ParseQuery(req.Query)
	if err != nil {
		s.ctr.Add("serve.bad_requests", 1)
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	sub, err := s.addSubscriber(tenant)
	if err != nil {
		s.ctr.Add("serve.subscribe_rejected", 1)
		s.ctr.Add("serve.tenant."+tenant+".subscribe_rejected", 1)
		w.Header().Set("Retry-After", "1")
		s.writeError(w, http.StatusTooManyRequests, err)
		return
	}
	defer s.removeSubscriber(sub)
	s.ctr.Add("serve.subscribe_opened", 1)
	defer s.ctr.Add("serve.subscribe_closed", 1)

	heartbeat := 15 * time.Second
	if req.HeartbeatMs > 0 {
		heartbeat = time.Duration(req.HeartbeatMs) * time.Millisecond
		if heartbeat < 50*time.Millisecond {
			heartbeat = 50 * time.Millisecond
		}
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	deps, global := QueryDeps(body, aux)
	key := CacheKey(body, aux, req.Vars, false)
	evaluate := func() ([][]string, []string, error) {
		// Each re-evaluation is one bounded query through the same
		// admission gate and cache partition an ad-hoc request uses.
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.requestTimeout())
		defer cancel()
		compute := func() (cached, error) {
			if err := s.adm.acquire(ctx, tenant); err != nil {
				return cached{}, err
			}
			defer s.adm.release()
			ans, err := s.med.QueryCtx(ctx, req.Query, req.Vars...)
			if err != nil {
				return cached{}, err
			}
			return cached{Ans: ans}, nil
		}
		var val cached
		if s.cfg.DisableCache {
			val, err = compute()
		} else {
			val, _, err = s.cache.do(ctx, tenant, key, deps, global, compute)
		}
		if err != nil {
			return nil, nil, err
		}
		return renderRows(val.Ans.Rows), val.Ans.Vars, nil
	}

	seq := 0
	last := map[string][]string{}
	push := func(event string, v any) bool {
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	// refresh evaluates and pushes a snapshot or delta; false ends the
	// stream (client gone or evaluation hit the client's own context).
	refresh := func() bool {
		rows, vars, err := evaluate()
		if err != nil {
			if r.Context().Err() != nil {
				return false
			}
			// Shed, budget, or timeout on one round: the subscription
			// survives; the next wakeup (or heartbeat-adjacent dirty
			// signal) retries against the then-current state.
			s.ctr.Add("serve.sub_eval_errors", 1)
			return true
		}
		next := make(map[string][]string, len(rows))
		for _, row := range rows {
			next[strings.Join(row, "\x1f")] = row
		}
		var added, removed [][]string
		for k, row := range next {
			if _, ok := last[k]; !ok {
				added = append(added, row)
			}
		}
		for k, row := range last {
			if _, ok := next[k]; !ok {
				removed = append(removed, row)
			}
		}
		if seq > 0 && len(added) == 0 && len(removed) == 0 {
			return true // woken but unchanged: nothing to send
		}
		seq++
		ok := false
		if seq == 1 || len(added)+len(removed) > len(rows)/2+8 {
			// First send, or a diff so large a fresh snapshot is
			// cheaper/simpler for the client to reconcile.
			s.ctr.Add("serve.sub_snapshots", 1)
			ok = push("snapshot", &SnapshotEvent{Vars: vars, Rows: rows, Count: len(rows), Seq: seq})
		} else {
			s.ctr.Add("serve.sub_deltas", 1)
			ok = push("delta", &DeltaEvent{Added: added, Removed: removed, Count: len(rows), Seq: seq})
		}
		last = next
		return ok
	}
	if !refresh() {
		s.logRequest(r, tenant, http.StatusOK, start, seq, outcomeComputed)
		return
	}
	ticker := time.NewTicker(heartbeat)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			s.logRequest(r, tenant, http.StatusOK, start, seq, outcomeComputed)
			return
		case <-s.drain:
			// Graceful shutdown: close the stream so Shutdown can finish;
			// clients reconnect against the next process.
			_, _ = fmt.Fprint(w, ": drain\n\n")
			flusher.Flush()
			s.logRequest(r, tenant, http.StatusOK, start, seq, outcomeComputed)
			return
		case <-sub.dirty:
			if !refresh() {
				s.logRequest(r, tenant, http.StatusOK, start, seq, outcomeComputed)
				return
			}
		case <-ticker.C:
			s.ctr.Add("serve.sub_heartbeats", 1)
			if _, err := fmt.Fprint(w, ": hb\n\n"); err != nil {
				s.logRequest(r, tenant, http.StatusOK, start, seq, outcomeComputed)
				return
			}
			flusher.Flush()
		}
	}
}

package serve

// Regression: a delta that is in flight when shutdown starts draining
// must be applied-and-logged (it got in before the listener closed) or
// refused at the connection level (it did not) — never accepted and
// then lost. The durable daemon relies on this ordering: medd saves
// its final snapshot only after Shutdown returns, so every delta the
// HTTP layer accepted must by then be in the WAL.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"modelmed/internal/persist"
	"modelmed/internal/term"
)

func jsonBody(t *testing.T, v any) io.Reader {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(b)
}

func TestDeltaDuringDrainIsLoggedNotLost(t *testing.T) {
	srv, med, _ := newServeFixture(t, Config{})
	if _, err := med.Materialize(); err != nil {
		t.Fatal(err)
	}
	db, err := persist.Open(t.TempDir(), &persist.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := med.SaveSnapshotTo(db); err != nil {
		t.Fatal(err)
	}

	// The logger stalls the first record until released, holding the
	// delta handler in flight while shutdown begins.
	entered := make(chan struct{})
	release := make(chan struct{})
	var logged int
	med.SetDeltaLogger(func(rec *persist.WALRecord) {
		if logged == 0 {
			close(entered)
			<-release
		}
		logged++
		if err := db.AppendWAL(rec); err != nil {
			t.Errorf("wal append: %v", err)
		}
	})

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	type deltaResult struct {
		code int
		err  error
	}
	resCh := make(chan deltaResult, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/delta", "application/json",
			jsonBody(t, DeltaRequest{
				Source: "alpha",
				Adds:   []string{"src_val('alpha', 'alpha_o0', note, 1)"},
			}))
		if err != nil {
			resCh <- deltaResult{err: err}
			return
		}
		resp.Body.Close()
		resCh <- deltaResult{code: resp.StatusCode}
	}()

	<-entered // the delta is past admission, inside ApplySourceDelta

	shutdownDone := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	go func() { shutdownDone <- ts.Config.Shutdown(ctx) }()

	// Drain has started (Shutdown closes the listener synchronously
	// before waiting on in-flight connections); the delta is still
	// blocked inside the mediator. Release it mid-drain.
	time.Sleep(20 * time.Millisecond)
	close(release)

	res := <-resCh
	if res.err != nil {
		t.Fatalf("in-flight delta during drain: %v", res.err)
	}
	if res.code != http.StatusOK {
		t.Fatalf("in-flight delta during drain: status %d", res.code)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// Applied: the store holds the pushed fact. Logged: the WAL holds
	// exactly the one record.
	resMat, err := med.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if !resMat.Holds("src_val", term.Atom("alpha"), term.Atom("alpha_o0"), term.Atom("note"), term.Int(1)) {
		t.Fatal("delta accepted during drain is not in the store")
	}
	rr, err := db.ReplayWAL(func(*persist.WALRecord) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if rr.Records != 1 || rr.Truncated {
		t.Fatalf("wal after drain: %+v, want exactly the accepted delta", rr)
	}

	// After drain, a new delta is refused at the connection level — the
	// listener is closed — so nothing can be accepted-but-unlogged. (The
	// exact errno varies by platform; any transport error is a clean
	// refusal, a 200 would be the regression.)
	if resp, err := http.Post(ts.URL+"/v1/delta", "application/json",
		jsonBody(t, DeltaRequest{Source: "alpha", Adds: []string{"src_val('alpha', 'alpha_o0', note, 2)"}})); err == nil {
		resp.Body.Close()
		t.Fatalf("delta after drain was accepted: status %d", resp.StatusCode)
	}

	// The medd drain sequence ends by rotating a snapshot that subsumes
	// the logged delta; after it the WAL is empty and a restore of the
	// snapshot alone reproduces the post-delta store.
	if err := med.SaveSnapshotTo(db); err != nil {
		t.Fatal(err)
	}
	rr, err = db.ReplayWAL(func(*persist.WALRecord) error { return nil })
	if err != nil || rr.Records != 0 {
		t.Fatalf("wal after final snapshot: %v %+v", err, rr)
	}
}

// Package serve is the mediator query service: an HTTP/JSON front door
// over one shared Mediator, owning the production concerns the library
// deliberately does not — admission control with per-tenant queues
// drained by deficit round-robin and per-tenant load-shedding,
// per-request deadlines propagated as contexts into the source fan-out
// and enforced inside the datalog fixpoint by cooperative gas checks,
// a normalized-query answer cache partitioned per tenant and
// invalidated precisely by the incremental layer's delta reports,
// graceful drain, and structured request logs with per-request trace
// attachment.
//
// Tenancy: a request's tenant is its X-API-Key header when that key is
// listed in Config.TenantWeights; requests with no key, or an unlisted
// key, belong to the default tenant. Tenants get their own admission
// queue (weighted fairly against the others), their own answer-cache
// partition, and their own shed/timeout/budget counters on /metrics.
//
// Endpoints:
//
//	POST /v1/query      ad-hoc or planned conceptual-level queries
//	POST /v1/delta      push a stated source delta (bridges ApplySourceDelta)
//	POST /v1/sync       version-diff every source (bridges SyncSources)
//	POST /v1/subscribe  standing query: answer deltas pushed over SSE
//	GET  /v1/plan       analyze a query without executing it
//	GET  /v1/trace      last span tree as JSON (tracing must be enabled)
//	GET  /healthz       liveness + registered sources
//	GET  /metrics       counters in Prometheus text format
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"modelmed/internal/datalog"
	"modelmed/internal/mediator"
	"modelmed/internal/obs"
	"modelmed/internal/parser"
	"modelmed/internal/term"
)

// Config tunes the service. Zero values mean the stated defaults.
type Config struct {
	// MaxInFlight bounds concurrently evaluating queries (default 8).
	MaxInFlight int
	// MaxQueue bounds each tenant's wait queue behind the in-flight
	// set (default 64, negative = no queue); beyond it that tenant's
	// requests are shed with 503 + Retry-After.
	MaxQueue int
	// TenantWeights names the recognized tenants (API keys) and their
	// deficit round-robin weights at the admission gate; a backlogged
	// tenant of weight w is granted w slots per rotation. Unlisted
	// keys and key-less requests share the built-in "default" tenant
	// (weight 1 unless listed).
	TenantWeights map[string]int
	// RequestTimeout caps every request's context (default 30s). A
	// request's timeout_ms may shorten it, never extend it.
	RequestTimeout time.Duration
	// CacheEntries sizes the answer cache (default 256).
	CacheEntries int
	// DisableCache turns the answer cache off entirely.
	DisableCache bool
	// MaxSubsPerTenant caps concurrently open /v1/subscribe streams
	// per tenant (default 64, negative = none allowed); beyond it the
	// tenant's subscribe requests get 429 + Retry-After.
	MaxSubsPerTenant int
	// RateLimits arms front-door token-bucket rate limiting: X-API-Key
	// -> requests/second on every /v1/* endpoint (429 + Retry-After
	// beyond). Unlisted keys share the "default" bucket when present
	// and are unlimited otherwise. Empty = no rate limiting.
	RateLimits map[string]float64
	// ShardID labels this server as one shard of a mediator cluster;
	// it is reported on /healthz so a router can verify its topology.
	// Empty outside cluster deployments.
	ShardID string
	// Log receives one structured line per request (nil = discard).
	Log *log.Logger
}

func (c Config) maxInFlight() int {
	if c.MaxInFlight <= 0 {
		return 8
	}
	return c.MaxInFlight
}

func (c Config) maxQueue() int {
	if c.MaxQueue < 0 {
		return 0
	}
	if c.MaxQueue == 0 {
		return 64
	}
	return c.MaxQueue
}

func (c Config) maxSubsPerTenant() int {
	if c.MaxSubsPerTenant < 0 {
		return 0
	}
	if c.MaxSubsPerTenant == 0 {
		return 64
	}
	return c.MaxSubsPerTenant
}

func (c Config) requestTimeout() time.Duration {
	if c.RequestTimeout <= 0 {
		return 30 * time.Second
	}
	return c.RequestTimeout
}

// Server is the query service over one shared mediator.
type Server struct {
	med   *mediator.Mediator
	cfg   Config
	adm   *admission
	cache *answerCache
	rl    *RateLimiter
	ctr   *obs.Counters
	mux   *http.ServeMux
	log   *log.Logger

	// started/finished account every request across its whole handler,
	// so a drain can prove no in-flight request was dropped.
	started  atomic.Int64
	finished atomic.Int64

	// Standing-query state (subscribe.go): open SSE subscriptions and
	// their per-tenant counts, plus the drain signal that tells every
	// stream to finish before Shutdown.
	subMu       sync.Mutex
	subscribers map[*subscriber]struct{}
	subTenants  map[string]int
	drain       chan struct{}
	drainOnce   sync.Once
}

// New builds a Server over the mediator.
func New(med *mediator.Mediator, cfg Config) *Server {
	s := &Server{
		med:         med,
		cfg:         cfg,
		adm:         newAdmission(cfg.maxInFlight(), cfg.maxQueue(), cfg.TenantWeights),
		cache:       newAnswerCache(cfg.CacheEntries),
		rl:          NewRateLimiter(cfg.RateLimits),
		ctr:         obs.NewCounters(),
		log:         cfg.Log,
		subscribers: map[*subscriber]struct{}{},
		subTenants:  map[string]int{},
		drain:       make(chan struct{}),
	}
	if s.log == nil {
		s.log = log.New(io.Discard, "", 0)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", s.handleQuery)
	mux.HandleFunc("/v1/delta", s.handleDelta)
	mux.HandleFunc("/v1/sync", s.handleSync)
	mux.HandleFunc("/v1/subscribe", s.handleSubscribe)
	mux.HandleFunc("/v1/plan", s.handlePlan)
	mux.HandleFunc("/v1/trace", s.handleTrace)
	mux.HandleFunc("/v1/facts", s.handleFacts)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux = mux
	return s
}

// Handler returns the HTTP handler (request accounting and the
// front-door rate limiter wrap the mux).
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.started.Add(1)
		defer s.finished.Add(1)
		s.ctr.Add("serve.requests", 1)
		// Rate limiting guards the API surface only; health and metrics
		// stay reachable from probes regardless of tenant abuse.
		if strings.HasPrefix(r.URL.Path, "/v1/") && !s.rl.Allow(r.Header.Get("X-API-Key")) {
			s.ctr.Add("serve.rate_limited", 1)
			s.ctr.Add("serve.tenant."+s.tenantOf(r)+".rate_limited", 1)
			w.Header().Set("Retry-After", "1")
			s.writeError(w, http.StatusTooManyRequests, errors.New("rate limit exceeded"))
			return
		}
		s.mux.ServeHTTP(w, r)
	})
}

// Counters returns the service's always-on counter set.
func (s *Server) Counters() *obs.Counters { return s.ctr }

// Started and Finished expose the drain accounting: after a graceful
// shutdown the two must be equal or requests were dropped mid-flight.
func (s *Server) Started() int64  { return s.started.Load() }
func (s *Server) Finished() int64 { return s.finished.Load() }

// CacheSize returns the number of cached answers (test/ops hook).
func (s *Server) CacheSize() int { return s.cache.size() }

// --- request/response shapes ---

// QueryRequest is the POST /v1/query body.
type QueryRequest struct {
	Query string `json:"query"`
	// Vars selects output columns; empty = all variables in order of
	// first occurrence.
	Vars []string `json:"vars,omitempty"`
	// Planned routes through Plan/ExecutePlan (source pruning +
	// selection pushdown) instead of the materialized base.
	Planned bool `json:"planned,omitempty"`
	// NoCache bypasses the answer cache for this request.
	NoCache bool `json:"no_cache,omitempty"`
	// Trace attaches this request's span tree to the response
	// (tracing must be enabled on the mediator).
	Trace bool `json:"trace,omitempty"`
	// TimeoutMs shortens the server's request timeout.
	TimeoutMs int `json:"timeout_ms,omitempty"`
}

// QueryResponse is the POST /v1/query reply.
type QueryResponse struct {
	Vars      []string        `json:"vars"`
	Rows      [][]string      `json:"rows"`
	Count     int             `json:"count"`
	Cached    bool            `json:"cached"`
	PlanTrace []string        `json:"plan_trace,omitempty"`
	Trace     *obs.SpanExport `json:"trace,omitempty"`
}

// DeltaRequest is the POST /v1/delta body. Adds and Dels are ground
// facts in the rule language (e.g. "src_val('NCMIR', o1, name, 'x')"),
// with or without the trailing period.
type DeltaRequest struct {
	Source string   `json:"source"`
	Adds   []string `json:"adds,omitempty"`
	Dels   []string `json:"dels,omitempty"`
}

// DeltaResponse reports one applied delta and its cache effect.
type DeltaResponse struct {
	Source         string `json:"source"`
	FactsAdded     int    `json:"facts_added"`
	FactsRemoved   int    `json:"facts_removed"`
	AnchorsAdded   int    `json:"anchors_added"`
	AnchorsRemoved int    `json:"anchors_removed"`
	Full           bool   `json:"full_rebuild"`
	CacheDropped   int    `json:"cache_entries_dropped"`
}

// PlanResponse is the GET /v1/plan reply.
type PlanResponse struct {
	Sources    []string   `json:"sources"`
	Concepts   []string   `json:"concepts,omitempty"`
	Restricted bool       `json:"restricted"`
	Pushdowns  []PlanStep `json:"pushdowns,omitempty"`
	Trace      []string   `json:"trace,omitempty"`
}

// PlanStep is one planned source access.
type PlanStep struct {
	Source     string `json:"source"`
	Class      string `json:"class"`
	Selections int    `json:"selections"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// --- handlers ---

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	tenant := s.tenantOf(r)
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	s.ctr.Add("serve.tenant."+tenant+".requests", 1)
	var req QueryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		s.ctr.Add("serve.bad_requests", 1)
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("decode: %w", err))
		s.logRequest(r, tenant, http.StatusBadRequest, start, 0, outcomeComputed)
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		s.ctr.Add("serve.bad_requests", 1)
		s.writeError(w, http.StatusBadRequest, errors.New("empty query"))
		s.logRequest(r, tenant, http.StatusBadRequest, start, 0, outcomeComputed)
		return
	}
	// Everything before admission is pure (no mediator locks): parse,
	// cache key, dependency set. A cache hit is then served without
	// touching the mediator at all, and an overloaded server sheds
	// before doing any work — even while a slow materialize holds the
	// mediator's internals.
	body, aux, err := parser.ParseQuery(req.Query)
	if err != nil {
		s.ctr.Add("serve.bad_requests", 1)
		s.writeError(w, http.StatusBadRequest, err)
		s.logRequest(r, tenant, http.StatusBadRequest, start, 0, outcomeComputed)
		return
	}

	timeout := s.cfg.requestTimeout()
	if req.TimeoutMs > 0 {
		if d := time.Duration(req.TimeoutMs) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	deps, global := QueryDeps(body, aux)
	key := CacheKey(body, aux, req.Vars, req.Planned)

	compute := func() (cached, error) {
		if err := s.adm.acquire(ctx, tenant); err != nil {
			return cached{}, err
		}
		defer s.adm.release()
		// Plan under the admission slot: it validates the vocabulary
		// (unknown predicates are client errors, not empty answers) and
		// drives the planned execution path.
		plan, err := s.med.Plan(req.Query)
		if err != nil {
			return cached{}, err
		}
		if req.Planned {
			ans, err := s.med.ExecutePlanCtx(ctx, plan, req.Vars)
			if err != nil {
				return cached{}, err
			}
			return cached{Ans: ans, PlanTrace: plan.Trace}, nil
		}
		ans, err := s.med.QueryCtx(ctx, req.Query, req.Vars...)
		if err != nil {
			return cached{}, err
		}
		return cached{Ans: ans}, nil
	}

	var val cached
	var out outcome
	if s.cfg.DisableCache || req.NoCache {
		val, err = compute()
		out = outcomeComputed
	} else {
		val, out, err = s.cache.do(ctx, tenant, key, deps, global, compute)
	}
	if err != nil {
		s.ctr.Add("serve.query_errors", 1)
		status := http.StatusInternalServerError
		var be *datalog.ErrBudgetExceeded
		switch {
		case errors.Is(err, errShed):
			s.ctr.Add("serve.shed", 1)
			s.ctr.Add("serve.tenant."+tenant+".shed", 1)
			w.Header().Set("Retry-After", "1")
			status = http.StatusServiceUnavailable
		case errors.Is(err, mediator.ErrUnknownPredicate):
			s.ctr.Add("serve.bad_requests", 1)
			status = http.StatusBadRequest
		case errors.As(err, &be):
			// The engine's gas meter stopped a runaway evaluation: the
			// query is well-formed but too expensive under the server's
			// limits, which no retry will change — a client error, not
			// an outage.
			s.ctr.Add("serve.budget_exceeded", 1)
			s.ctr.Add("serve.tenant."+tenant+".budget_exceeded", 1)
			status = http.StatusUnprocessableEntity
		case errors.Is(err, context.DeadlineExceeded):
			s.ctr.Add("serve.timeouts", 1)
			s.ctr.Add("serve.tenant."+tenant+".timeouts", 1)
			status = http.StatusGatewayTimeout
		case errors.Is(err, context.Canceled):
			status = 499 // client closed request
		}
		s.writeError(w, status, err)
		s.logRequest(r, tenant, status, start, 0, out)
		return
	}
	switch out {
	case outcomeHit:
		s.ctr.Add("serve.cache_hits", 1)
	case outcomeCollapsed:
		s.ctr.Add("serve.cache_collapsed", 1)
	default:
		s.ctr.Add("serve.cache_misses", 1)
	}
	s.ctr.Add("serve.query_ok", 1)

	resp := &QueryResponse{
		Vars:      val.Ans.Vars,
		Rows:      renderRows(val.Ans.Rows),
		Count:     len(val.Ans.Rows),
		Cached:    out == outcomeHit,
		PlanTrace: val.PlanTrace,
	}
	if req.Trace {
		resp.Trace = val.Ans.Span.Export()
	}
	s.writeJSON(w, http.StatusOK, resp)
	s.logRequest(r, tenant, http.StatusOK, start, resp.Count, out)
}

func (s *Server) handleDelta(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	var req DeltaRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("decode: %w", err))
		return
	}
	adds, err := parseFacts(req.Adds)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("adds: %w", err))
		return
	}
	dels, err := parseFacts(req.Dels)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("dels: %w", err))
		return
	}
	rep, err := s.med.ApplySourceDelta(req.Source, adds, dels)
	if err != nil {
		s.ctr.Add("serve.delta_errors", 1)
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	s.ctr.Add("serve.deltas", 1)
	dropped := s.ApplyReport(rep)
	s.writeJSON(w, http.StatusOK, deltaResponse(rep, dropped))
	s.logRequest(r, defaultTenant, http.StatusOK, start, rep.FactsAdded+rep.FactsRemoved, outcomeComputed)
}

func (s *Server) handleSync(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	reps, err := s.med.SyncSources()
	if err != nil {
		s.ctr.Add("serve.sync_errors", 1)
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.ctr.Add("serve.syncs", 1)
	out := make([]*DeltaResponse, 0, len(reps))
	for _, rep := range reps {
		out = append(out, deltaResponse(rep, s.ApplyReport(rep)))
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"refreshed": out})
	s.logRequest(r, defaultTenant, http.StatusOK, start, len(reps), outcomeComputed)
}

// invalidateFor applies one delta report's precise cache effect: a
// patched source drops only the entries depending on it; a full
// rebuild drops everything.
func (s *Server) invalidateFor(rep *mediator.DeltaReport) int {
	var dropped int
	if rep.Full {
		dropped = s.cache.invalidateAll()
		s.ctr.Add("serve.cache_invalidations_full", 1)
	} else {
		dropped = s.cache.invalidateSource(rep.Source)
		s.ctr.Add("serve.cache_invalidations_source", 1)
	}
	s.ctr.Add("serve.cache_entries_dropped", int64(dropped))
	return dropped
}

func deltaResponse(rep *mediator.DeltaReport, dropped int) *DeltaResponse {
	return &DeltaResponse{
		Source:         rep.Source,
		FactsAdded:     rep.FactsAdded,
		FactsRemoved:   rep.FactsRemoved,
		AnchorsAdded:   rep.AnchorsAdded,
		AnchorsRemoved: rep.AnchorsRemoved,
		Full:           rep.Full,
		CacheDropped:   dropped,
	}
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	q := r.URL.Query().Get("q")
	if strings.TrimSpace(q) == "" {
		s.writeError(w, http.StatusBadRequest, errors.New("missing q parameter"))
		return
	}
	p, err := s.med.Plan(q)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	s.ctr.Add("serve.plans", 1)
	resp := &PlanResponse{
		Sources:    p.Sources,
		Concepts:   p.Concepts,
		Restricted: p.Restricted,
		Trace:      p.Trace,
	}
	for _, step := range p.Pushdowns {
		resp.Pushdowns = append(resp.Pushdowns, PlanStep{
			Source: step.Source, Class: step.Class, Selections: len(step.Selections),
		})
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	sp := s.med.LastTrace()
	if sp == nil {
		s.writeJSON(w, http.StatusNotFound, errorResponse{Error: "no trace captured (enable tracing and run a query)"})
		return
	}
	s.writeJSON(w, http.StatusOK, sp.Export())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	inflight, queued := s.adm.stats()
	resp := map[string]any{
		"status":   "ok",
		"sources":  s.med.Sources(),
		"inflight": inflight,
		"queued":   queued,
	}
	if s.cfg.ShardID != "" {
		resp["shard_id"] = s.cfg.ShardID
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// FactsResponse is the GET /v1/facts reply: this mediator's per-source
// contribution in the parseable rule language, reflecting every
// applied delta. A cluster router gathers these from its shards when a
// query cannot be answered by unioning per-shard answers.
type FactsResponse struct {
	ShardID string                `json:"shard_id,omitempty"`
	Sources []mediator.SourceDump `json:"sources"`
}

func (s *Server) handleFacts(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.requestTimeout())
	defer cancel()
	dumps, err := s.med.FactsDump(ctx)
	if err != nil {
		s.ctr.Add("serve.facts_errors", 1)
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.ctr.Add("serve.facts_dumps", 1)
	s.writeJSON(w, http.StatusOK, &FactsResponse{ShardID: s.cfg.ShardID, Sources: dumps})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	inflight, queued := s.adm.stats()
	s.ctr.Set("serve.inflight", int64(inflight))
	s.ctr.Set("serve.queued", int64(queued))
	for t, n := range s.adm.tenantQueued() {
		s.ctr.Set("serve.tenant."+t+".queued", int64(n))
	}
	s.ctr.Set("serve.cache_size", int64(s.cache.size()))
	s.ctr.Set("serve.subscribers", int64(s.subscriberCount()))
	s.ctr.Set("serve.requests_started", s.started.Load())
	s.ctr.Set("serve.requests_finished", s.finished.Load())
	if err := s.ctr.WritePrometheus(w, "modelmed"); err != nil {
		return
	}
	// The mediator's own counters exist only while tracing is enabled.
	_ = s.med.ObsCounters().WritePrometheus(w, "modelmed")
}

// --- helpers ---

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	s.writeJSON(w, status, errorResponse{Error: err.Error()})
}

func (s *Server) logRequest(r *http.Request, tenant string, status int, start time.Time, rows int, out outcome) {
	mode := "miss"
	switch out {
	case outcomeHit:
		mode = "hit"
	case outcomeCollapsed:
		mode = "collapsed"
	}
	s.log.Printf("method=%s path=%s tenant=%s status=%d dur=%s rows=%d cache=%s",
		r.Method, r.URL.Path, tenant, status, time.Since(start).Round(time.Microsecond), rows, mode)
}

// tenantOf maps a request to its tenant: the X-API-Key header when
// the operator listed that key in TenantWeights, the default tenant
// otherwise. Collapsing unknown keys keeps tenant cardinality (queues,
// cache partitions, metric series) operator-bounded.
func (s *Server) tenantOf(r *http.Request) string {
	k := r.Header.Get("X-API-Key")
	if k == "" {
		return defaultTenant
	}
	if _, ok := s.cfg.TenantWeights[k]; ok {
		return k
	}
	return defaultTenant
}

// renderRows renders term tuples as strings for JSON transport.
func renderRows(rows [][]term.Term) [][]string {
	out := make([][]string, len(rows))
	for i, row := range rows {
		cells := make([]string, len(row))
		for j, t := range row {
			cells[j] = t.String()
		}
		out[i] = cells
	}
	return out
}

// parseFacts parses ground facts written in the rule language.
func parseFacts(lines []string) ([]datalog.Rule, error) {
	var out []datalog.Rule
	for _, l := range lines {
		l = strings.TrimSpace(l)
		if l == "" {
			continue
		}
		if !strings.HasSuffix(l, ".") {
			l += "."
		}
		rules, err := parser.ParseRules(l)
		if err != nil {
			return nil, err
		}
		out = append(out, rules...)
	}
	return out, nil
}

// srcPreds are the namespaced source-fact predicates whose first
// argument names the contributing source.
var srcPreds = map[string]bool{
	mediator.PredSrcObj: true, mediator.PredSrcVal: true,
	mediator.PredSrcSub: true, mediator.PredSrcTuple: true,
	mediator.PredAnchor: true,
}

// QueryDeps derives the cache dependency set of a query: the ground
// source names its body (and any query-local rule bodies) read. Any
// variable source position, derived predicate (views, GCM bridge,
// domain-map operations) or aggregate over one makes the query depend
// on everything (global), since those derivations can draw on any
// source. Exported because the cluster router keys its own answer
// cache the same way.
func QueryDeps(body []datalog.BodyElem, aux []datalog.Rule) (deps []string, global bool) {
	seen := map[string]bool{}
	auxHeads := map[string]bool{}
	for _, r := range aux {
		auxHeads[r.Head.Pred] = true
	}
	var walk func(es []datalog.BodyElem)
	walk = func(es []datalog.BodyElem) {
		for _, e := range es {
			switch x := e.(type) {
			case datalog.Literal:
				if datalog.IsBuiltin(x.Pred, len(x.Args)) || auxHeads[x.Pred] {
					continue
				}
				if srcPreds[x.Pred] && len(x.Args) >= 1 && x.Args[0].Kind() == term.KindAtom {
					name := x.Args[0].Name()
					if !seen[name] {
						seen[name] = true
						deps = append(deps, name)
					}
					continue
				}
				global = true
			case datalog.Aggregate:
				inner := make([]datalog.BodyElem, len(x.Body))
				for i, l := range x.Body {
					inner[i] = l
				}
				walk(inner)
			}
		}
	}
	walk(body)
	for _, r := range aux {
		walk(r.Body)
	}
	if global {
		return nil, true
	}
	return deps, false
}

// CacheKey renders the normalized form of a query: the parsed body and
// query-local rules (whitespace of the original text no longer
// matters), the selected vars, and the execution mode. Exported
// because the cluster router keys its own answer cache the same way.
func CacheKey(body []datalog.BodyElem, aux []datalog.Rule, vars []string, planned bool) string {
	var b strings.Builder
	for i, e := range body {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%v", e)
	}
	for _, r := range aux {
		fmt.Fprintf(&b, " :- %v", r)
	}
	b.WriteString("|vars=")
	b.WriteString(strings.Join(vars, ","))
	if planned {
		b.WriteString("|planned")
	}
	return b.String()
}

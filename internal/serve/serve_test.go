package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"modelmed/internal/gcm"
	"modelmed/internal/mediator"
	"modelmed/internal/sources"
	"modelmed/internal/term"
	"modelmed/internal/wrapper"
)

var serveConcepts = []string{"cerebellum", "purkinje_cell", "dendrite", "spine", "soma"}

const serveViews = `
	covered(C) :- anchor(S, O, C).
	site_count(C, N) :- N = count{O[C]; anchor(S, O, C)}.
`

// newServeFixture builds a mediator over two small synthetic sources
// (alpha, beta) plus a Server at the given config.
func newServeFixture(t *testing.T, cfg Config) (*Server, *mediator.Mediator, []*wrapper.InMemory) {
	t.Helper()
	var ws []*wrapper.InMemory
	m := mediator.New(sources.NeuroDM(), &mediator.Options{})
	for i, name := range []string{"alpha", "beta"} {
		model := sources.MustSyntheticSource(name, int64(40+i), 6, serveConcepts)
		w, err := wrapper.NewInMemory(model)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Register(w); err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w)
	}
	if err := m.DefineView(serveViews); err != nil {
		t.Fatal(err)
	}
	return New(m, cfg), m, ws
}

func postJSON(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func doQuery(t *testing.T, ts *httptest.Server, req QueryRequest) (int, *QueryResponse) {
	t.Helper()
	resp, body := postJSON(t, ts, "/v1/query", req)
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil
	}
	var out QueryResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decode query response: %v\n%s", err, body)
	}
	return resp.StatusCode, &out
}

func TestQueryEndpointAndCache(t *testing.T) {
	srv, _, _ := newServeFixture(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := QueryRequest{Query: "src_obj('alpha', O, C)", Vars: []string{"O", "C"}}
	code, first := doQuery(t, ts, req)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if first.Count == 0 || len(first.Rows) != first.Count {
		t.Fatalf("first answer: count=%d rows=%d", first.Count, len(first.Rows))
	}
	if first.Cached {
		t.Fatal("first answer claims to be cached")
	}
	if got := first.Vars; len(got) != 2 || got[0] != "O" || got[1] != "C" {
		t.Fatalf("vars = %v", got)
	}

	_, second := doQuery(t, ts, req)
	if !second.Cached {
		t.Fatal("second identical query was not served from cache")
	}
	if second.Count != first.Count {
		t.Fatalf("cached count %d != fresh count %d", second.Count, first.Count)
	}

	// Textual variants normalize to the same key.
	_, variant := doQuery(t, ts, QueryRequest{
		Query: "  src_obj( 'alpha' ,O,  C )  ", Vars: []string{"O", "C"},
	})
	if !variant.Cached {
		t.Fatal("whitespace variant missed the cache; key is not normalized")
	}

	// no_cache bypasses.
	_, fresh := doQuery(t, ts, QueryRequest{Query: "src_obj('alpha', O, C)", Vars: []string{"O", "C"}, NoCache: true})
	if fresh.Cached {
		t.Fatal("no_cache request reported cached")
	}
}

// TestDeltaPreciseInvalidation is the acceptance criterion: a /v1/delta
// call invalidates only the affected cached answers — an unrelated
// cached query is still served from cache, the affected query is
// recomputed (and sees the new fact).
func TestDeltaPreciseInvalidation(t *testing.T) {
	srv, _, _ := newServeFixture(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	alphaReq := QueryRequest{Query: "src_obj('alpha', O, C)", Vars: []string{"O", "C"}}
	betaReq := QueryRequest{Query: "src_obj('beta', O, C)", Vars: []string{"O", "C"}}
	globalReq := QueryRequest{Query: "covered(C)", Vars: []string{"C"}}

	_, alphaBefore := doQuery(t, ts, alphaReq)
	doQuery(t, ts, betaReq)
	doQuery(t, ts, globalReq)
	for _, r := range []QueryRequest{alphaReq, betaReq, globalReq} {
		if _, got := doQuery(t, ts, r); !got.Cached {
			t.Fatalf("warm-up failed: %q not cached", r.Query)
		}
	}

	resp, body := postJSON(t, ts, "/v1/delta", DeltaRequest{
		Source: "alpha",
		Adds:   []string{"src_obj('alpha', delta_obj_1, record)"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delta status %d: %s", resp.StatusCode, body)
	}
	var dr DeltaResponse
	if err := json.Unmarshal(body, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.FactsAdded != 1 || dr.Full {
		t.Fatalf("delta report: %+v", dr)
	}
	if dr.CacheDropped != 2 {
		t.Fatalf("cache dropped %d entries, want 2 (the alpha query and the global view query)", dr.CacheDropped)
	}

	// Unrelated query: still served from cache.
	if _, got := doQuery(t, ts, betaReq); !got.Cached {
		t.Fatal("beta query was invalidated by an alpha delta")
	}
	// Affected query: recomputed, and the recomputation sees the delta.
	_, alphaAfter := doQuery(t, ts, alphaReq)
	if alphaAfter.Cached {
		t.Fatal("alpha query still served from cache after an alpha delta")
	}
	if alphaAfter.Count != alphaBefore.Count+1 {
		t.Fatalf("alpha count after delta = %d, want %d", alphaAfter.Count, alphaBefore.Count+1)
	}
	// Global (view) query: recomputed too — views can read any source.
	if _, got := doQuery(t, ts, globalReq); got.Cached {
		t.Fatal("view query still served from cache after a delta")
	}

	// Removing the fact restores the original answer.
	resp, body = postJSON(t, ts, "/v1/delta", DeltaRequest{
		Source: "alpha",
		Dels:   []string{"src_obj('alpha', delta_obj_1, record)."},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delta status %d: %s", resp.StatusCode, body)
	}
	_, alphaRestored := doQuery(t, ts, alphaReq)
	if alphaRestored.Count != alphaBefore.Count {
		t.Fatalf("alpha count after removal = %d, want %d", alphaRestored.Count, alphaBefore.Count)
	}
}

func TestPlannedQuery(t *testing.T) {
	srv, _, _ := newServeFixture(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := QueryRequest{Query: "src_obj('alpha', O, record)", Vars: []string{"O"}, Planned: true}
	code, first := doQuery(t, ts, req)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if first.Count == 0 {
		t.Fatal("planned query returned no rows")
	}
	if len(first.PlanTrace) == 0 {
		t.Fatal("planned query response carries no plan trace")
	}
	_, second := doQuery(t, ts, req)
	if !second.Cached {
		t.Fatal("repeated planned query missed the cache")
	}
	// Planned and ad-hoc execution of the same text are distinct keys.
	_, adhoc := doQuery(t, ts, QueryRequest{Query: "src_obj('alpha', O, record)", Vars: []string{"O"}})
	if adhoc.Cached {
		t.Fatal("ad-hoc query hit the planned query's cache entry")
	}
	if adhoc.Count != first.Count {
		t.Fatalf("ad-hoc count %d != planned count %d", adhoc.Count, first.Count)
	}
}

func TestQueryValidation(t *testing.T) {
	srv, _, _ := newServeFixture(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		req  QueryRequest
	}{
		{"unknown predicate", QueryRequest{Query: "phantom(X)", Vars: []string{"X"}}},
		{"empty", QueryRequest{Query: "   "}},
		{"malformed", QueryRequest{Query: "src_obj("}},
	}
	for _, tc := range cases {
		if code, _ := doQuery(t, ts, tc.req); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, code)
		}
	}

	resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: status %d, want 400", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/query: status %d, want 405", resp.StatusCode)
	}
}

func TestDeltaValidation(t *testing.T) {
	srv, _, _ := newServeFixture(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, _ := postJSON(t, ts, "/v1/delta", DeltaRequest{Source: "alpha", Adds: []string{"src_obj("}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed fact: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts, "/v1/delta", DeltaRequest{Source: "ghost", Adds: []string{"src_obj('ghost', o1, record)"}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown source: status %d, want 400", resp.StatusCode)
	}
}

func TestSyncEndpoint(t *testing.T) {
	srv, _, ws := newServeFixture(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	alphaReq := QueryRequest{Query: "src_obj('alpha', O, C)", Vars: []string{"O", "C"}}
	_, before := doQuery(t, ts, alphaReq)
	doQuery(t, ts, alphaReq) // warm the cache

	ws[0].Mutate(func(m *gcm.Model) {
		m.AddObject(gcm.Object{
			ID:    term.Atom("sync_obj_1"),
			Class: "record",
			Values: map[string][]term.Term{
				"location": {term.Atom("spine")},
				"value":    {term.Float(4.2)},
			},
		})
	})

	resp, body := postJSON(t, ts, "/v1/sync", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Refreshed []*DeltaResponse `json:"refreshed"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	var alphaRep *DeltaResponse
	for _, r := range out.Refreshed {
		if r.Source == "alpha" {
			alphaRep = r
		}
	}
	if alphaRep == nil || alphaRep.FactsAdded == 0 {
		t.Fatalf("sync reports: %s", body)
	}

	_, after := doQuery(t, ts, alphaReq)
	if after.Cached {
		t.Fatal("alpha query still cached after sync touched alpha")
	}
	if after.Count != before.Count+1 {
		t.Fatalf("count after sync = %d, want %d", after.Count, before.Count+1)
	}
}

func TestPlanEndpoint(t *testing.T) {
	srv, _, _ := newServeFixture(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/plan?q=" + url.QueryEscape("src_obj('alpha', O, record)"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("plan status %d", resp.StatusCode)
	}
	var pr PlanResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	found := false
	for _, s := range pr.Sources {
		if s == "alpha" {
			found = true
		}
	}
	if !found {
		t.Fatalf("plan sources = %v, want alpha", pr.Sources)
	}

	resp, err = http.Get(ts.URL + "/v1/plan?q=phantom(X)")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown predicate plan: status %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/plan")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing q: status %d, want 400", resp.StatusCode)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	srv, _, _ := newServeFixture(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz struct {
		Status  string   `json:"status"`
		Sources []string `json:"sources"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hz.Status != "ok" || len(hz.Sources) != 2 {
		t.Fatalf("healthz = %+v", hz)
	}

	doQuery(t, ts, QueryRequest{Query: "src_obj('alpha', O, C)", Vars: []string{"O", "C"}})

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	text := buf.String()
	for _, want := range []string{
		"modelmed_serve_requests ",
		"modelmed_serve_query_ok ",
		"modelmed_serve_cache_misses ",
		"# TYPE modelmed_serve_requests counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q:\n%s", want, text)
		}
	}
}

func TestTraceEndpointAndPerRequestTrace(t *testing.T) {
	srv, m, _ := newServeFixture(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Tracing off: no per-request trace, /v1/trace is 404.
	_, out := doQuery(t, ts, QueryRequest{Query: "src_obj('alpha', O, C)", Vars: []string{"O", "C"}, Trace: true, NoCache: true})
	if out.Trace != nil {
		t.Fatal("trace attached while tracing is disabled")
	}
	resp, err := http.Get(ts.URL + "/v1/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("trace status %d, want 404", resp.StatusCode)
	}

	m.EnableTracing(true)
	_, out = doQuery(t, ts, QueryRequest{Query: "src_obj('alpha', O, C)", Vars: []string{"O", "C"}, Trace: true, NoCache: true})
	if out.Trace == nil || out.Trace.Name != "mediator.query" {
		t.Fatalf("per-request trace = %+v", out.Trace)
	}
	resp, err = http.Get(ts.URL + "/v1/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d, want 200", resp.StatusCode)
	}
}

func TestSheddingUnderLoad(t *testing.T) {
	// One slot, no queue, a source that hangs: the first request holds
	// the slot until its deadline (504); a request arriving meanwhile is
	// shed (503 + Retry-After).
	model := sources.MustSyntheticSource("slow", 7, 6, serveConcepts)
	inner, err := wrapper.NewInMemory(model)
	if err != nil {
		t.Fatal(err)
	}
	fw := wrapper.NewFaulty(inner, wrapper.FaultConfig{HangFirst: 1000, Hang: 10 * time.Second})
	m := mediator.New(sources.NeuroDM(), &mediator.Options{SourceTimeout: time.Minute})
	if err := m.Register(fw); err != nil {
		t.Fatal(err)
	}
	srv := New(m, Config{MaxInFlight: 1, MaxQueue: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	slow := QueryRequest{Query: "src_obj('slow', O, C)", Vars: []string{"O", "C"}, NoCache: true, TimeoutMs: 2000}
	var wg sync.WaitGroup
	wg.Add(1)
	var slowCode int
	go func() {
		defer wg.Done()
		slowCode, _ = doQuery(t, ts, slow)
	}()
	// Wait until the slow request holds the slot.
	deadline := time.Now().Add(2 * time.Second)
	for {
		in, _ := srv.adm.stats()
		if in == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slow request never acquired the slot")
		}
		time.Sleep(5 * time.Millisecond)
	}

	b, _ := json.Marshal(slow)
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("concurrent request: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response carries no Retry-After")
	}

	wg.Wait()
	if slowCode != http.StatusGatewayTimeout {
		t.Fatalf("slow request: status %d, want 504", slowCode)
	}
	if got := srv.Counters().Get("serve.shed"); got != 1 {
		t.Fatalf("serve.shed = %d, want 1", got)
	}
}

func TestDrainAccounting(t *testing.T) {
	srv, _, _ := newServeFixture(t, Config{})
	ts := httptest.NewServer(srv.Handler())

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			doQuery(t, ts, QueryRequest{
				Query: fmt.Sprintf("src_obj('alpha', O, C), site_count(CC, N), N >= %d", i%3),
				Vars:  []string{"O", "C"},
			})
		}(i)
	}
	wg.Wait()
	ts.Close() // waits for outstanding handlers
	if srv.Started() != srv.Finished() {
		t.Fatalf("started %d != finished %d after drain", srv.Started(), srv.Finished())
	}
}

package serve

// End-to-end tests for the continuous-query surface: an SSE client
// subscribes, receives the snapshot, then receives pushed answer
// deltas when the materialization changes — without ever polling.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// sseEvent is one parsed server-sent event (or a comment line, with
// name "comment").
type sseEvent struct {
	name string
	data string
}

// sseClient consumes one /v1/subscribe stream in the background.
type sseClient struct {
	resp   *http.Response
	events chan sseEvent
	status int
	body   string
}

// openSSE posts a SubscribeRequest and, on 200, starts parsing the
// event stream into c.events. On any other status the body is
// captured instead.
func openSSE(t *testing.T, ts *httptest.Server, req SubscribeRequest, apiKey string) *sseClient {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/subscribe", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	if apiKey != "" {
		hr.Header.Set("X-API-Key", apiKey)
	}
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	c := &sseClient{resp: resp, status: resp.StatusCode, events: make(chan sseEvent, 64)}
	if resp.StatusCode != http.StatusOK {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		resp.Body.Close()
		c.body = buf.String()
		close(c.events)
		return c
	}
	go func() {
		defer close(c.events)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		var ev sseEvent
		for sc.Scan() {
			line := sc.Text()
			switch {
			case line == "":
				if ev.name != "" || ev.data != "" {
					c.events <- ev
				}
				ev = sseEvent{}
			case strings.HasPrefix(line, "event: "):
				ev.name = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				ev.data = strings.TrimPrefix(line, "data: ")
			case strings.HasPrefix(line, ":"):
				c.events <- sseEvent{name: "comment", data: strings.TrimSpace(strings.TrimPrefix(line, ":"))}
			}
		}
	}()
	return c
}

func (c *sseClient) close() {
	if c.resp != nil && c.status == http.StatusOK {
		c.resp.Body.Close()
	}
}

// next returns the next non-comment event, failing after the timeout.
func (c *sseClient) next(t *testing.T, timeout time.Duration) sseEvent {
	t.Helper()
	deadline := time.After(timeout)
	for {
		select {
		case ev, ok := <-c.events:
			if !ok {
				t.Fatal("SSE stream closed while waiting for an event")
			}
			if ev.name == "comment" {
				continue
			}
			return ev
		case <-deadline:
			t.Fatalf("no SSE event within %v", timeout)
		}
	}
}

// nextComment returns the next comment line, failing after the timeout.
func (c *sseClient) nextComment(t *testing.T, timeout time.Duration) string {
	t.Helper()
	deadline := time.After(timeout)
	for {
		select {
		case ev, ok := <-c.events:
			if !ok {
				t.Fatal("SSE stream closed while waiting for a comment")
			}
			if ev.name == "comment" {
				return ev.data
			}
		case <-deadline:
			t.Fatalf("no SSE comment within %v", timeout)
		}
	}
}

// closed reports whether the stream ends within the timeout.
func (c *sseClient) closed(t *testing.T, timeout time.Duration) bool {
	t.Helper()
	deadline := time.After(timeout)
	for {
		select {
		case _, ok := <-c.events:
			if !ok {
				return true
			}
		case <-deadline:
			return false
		}
	}
}

// TestSubscribePushesAnswerDeltas is the tentpole acceptance test at
// the serve layer: a standing query receives its snapshot, then a
// pushed `delta` event after a source delta — the client never polls.
func TestSubscribePushesAnswerDeltas(t *testing.T) {
	srv, _, _ := newServeFixture(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.BeginDrain()

	c := openSSE(t, ts, SubscribeRequest{
		Query: "src_obj('alpha', O, C)", Vars: []string{"O", "C"},
	}, "")
	defer c.close()
	if c.status != http.StatusOK {
		t.Fatalf("subscribe status %d: %s", c.status, c.body)
	}
	ev := c.next(t, 5*time.Second)
	if ev.name != "snapshot" {
		t.Fatalf("first event = %q, want snapshot", ev.name)
	}
	var snap SnapshotEvent
	if err := json.Unmarshal([]byte(ev.data), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Count == 0 || snap.Seq != 1 {
		t.Fatalf("snapshot: %+v", snap)
	}

	// A source delta arrives over /v1/delta; the subscriber must be
	// notified with exactly the answer change.
	resp, body := postJSON(t, ts, "/v1/delta", DeltaRequest{
		Source: "alpha",
		Adds:   []string{"src_obj('alpha', sub_obj_1, record)"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delta status %d: %s", resp.StatusCode, body)
	}
	ev = c.next(t, 5*time.Second)
	if ev.name != "delta" {
		t.Fatalf("second event = %q (%s), want delta", ev.name, ev.data)
	}
	var d DeltaEvent
	if err := json.Unmarshal([]byte(ev.data), &d); err != nil {
		t.Fatal(err)
	}
	if len(d.Added) != 1 || len(d.Removed) != 0 || d.Count != snap.Count+1 || d.Seq != 2 {
		t.Fatalf("delta event: %+v", d)
	}
	if d.Added[0][0] != "sub_obj_1" {
		t.Fatalf("added row = %v", d.Added[0])
	}

	// Removing it pushes the inverse delta.
	resp, body = postJSON(t, ts, "/v1/delta", DeltaRequest{
		Source: "alpha",
		Dels:   []string{"src_obj('alpha', sub_obj_1, record)"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delta status %d: %s", resp.StatusCode, body)
	}
	ev = c.next(t, 5*time.Second)
	if ev.name != "delta" {
		t.Fatalf("third event = %q, want delta", ev.name)
	}
	d = DeltaEvent{} // fields omitted from the JSON must not linger
	if err := json.Unmarshal([]byte(ev.data), &d); err != nil {
		t.Fatal(err)
	}
	if len(d.Added) != 0 || len(d.Removed) != 1 || d.Count != snap.Count {
		t.Fatalf("removal delta event: %+v", d)
	}
	if got := srv.Counters().Get("serve.sub_deltas"); got < 2 {
		t.Fatalf("serve.sub_deltas = %d, want >= 2", got)
	}
}

// TestSubscribeUnchangedAnswerSendsNothing: a delta to another source
// wakes the subscriber, but an unchanged answer set emits no event.
func TestSubscribeUnchangedAnswerSendsNothing(t *testing.T) {
	srv, _, _ := newServeFixture(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.BeginDrain()

	c := openSSE(t, ts, SubscribeRequest{
		Query: "src_obj('alpha', O, C)", Vars: []string{"O", "C"}, HeartbeatMs: 100,
	}, "")
	defer c.close()
	if ev := c.next(t, 5*time.Second); ev.name != "snapshot" {
		t.Fatalf("first event = %q", ev.name)
	}
	resp, body := postJSON(t, ts, "/v1/delta", DeltaRequest{
		Source: "beta",
		Adds:   []string{"src_obj('beta', other_obj, record)"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delta status %d: %s", resp.StatusCode, body)
	}
	// Heartbeats keep flowing; no snapshot/delta event may arrive.
	sawHB := false
	deadline := time.After(2 * time.Second)
	for !sawHB {
		select {
		case ev, ok := <-c.events:
			if !ok {
				t.Fatal("stream closed")
			}
			if ev.name == "comment" {
				sawHB = ev.data == "hb"
				continue
			}
			t.Fatalf("unexpected event %q (%s) for an unchanged answer", ev.name, ev.data)
		case <-deadline:
			t.Fatal("no heartbeat within 2s")
		}
	}
}

// TestSubscribeTenantCap: the per-tenant cap rejects the excess
// subscription with 429 while another tenant still gets through.
func TestSubscribeTenantCap(t *testing.T) {
	srv, _, _ := newServeFixture(t, Config{
		MaxSubsPerTenant: 1,
		TenantWeights:    map[string]int{"acme": 1, "umbrella": 1},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.BeginDrain()

	req := SubscribeRequest{Query: "covered(C)", Vars: []string{"C"}}
	first := openSSE(t, ts, req, "acme")
	defer first.close()
	if first.status != http.StatusOK {
		t.Fatalf("first subscribe: %d %s", first.status, first.body)
	}
	first.next(t, 5*time.Second) // wait for snapshot => registered

	second := openSSE(t, ts, req, "acme")
	defer second.close()
	if second.status != http.StatusTooManyRequests {
		t.Fatalf("second subscribe for same tenant: %d, want 429", second.status)
	}
	if second.resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	other := openSSE(t, ts, req, "umbrella")
	defer other.close()
	if other.status != http.StatusOK {
		t.Fatalf("other tenant subscribe: %d %s", other.status, other.body)
	}
	if got := srv.Counters().Get("serve.subscribe_rejected"); got != 1 {
		t.Fatalf("serve.subscribe_rejected = %d", got)
	}

	// Closing the first stream frees the slot.
	first.close()
	waitFor(t, 5*time.Second, func() bool { return srv.subscriberCount() == 1 })
	third := openSSE(t, ts, req, "acme")
	defer third.close()
	if third.status != http.StatusOK {
		t.Fatalf("subscribe after slot freed: %d %s", third.status, third.body)
	}
}

// TestSubscribeDrainClosesStreams: BeginDrain ends every open stream
// so graceful shutdown is not blocked, and accounting stays balanced.
func TestSubscribeDrainClosesStreams(t *testing.T) {
	srv, _, _ := newServeFixture(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var clients []*sseClient
	for i := 0; i < 3; i++ {
		c := openSSE(t, ts, SubscribeRequest{Query: "covered(C)", Vars: []string{"C"}}, "")
		defer c.close()
		if c.status != http.StatusOK {
			t.Fatalf("subscribe %d: %d", i, c.status)
		}
		c.next(t, 5*time.Second)
		clients = append(clients, c)
	}
	srv.BeginDrain()
	srv.BeginDrain() // idempotent
	for i, c := range clients {
		if !c.closed(t, 5*time.Second) {
			t.Fatalf("stream %d still open after BeginDrain", i)
		}
	}
	waitFor(t, 5*time.Second, func() bool {
		return srv.subscriberCount() == 0 && srv.Started() == srv.Finished()
	})
}

// TestSubscribeBadRequests: method and body validation.
func TestSubscribeBadRequests(t *testing.T) {
	srv, _, _ := newServeFixture(t, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.BeginDrain()

	resp, err := http.Get(ts.URL + "/v1/subscribe")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d", resp.StatusCode)
	}
	for _, q := range []string{"", "covered(C"} {
		c := openSSE(t, ts, SubscribeRequest{Query: q}, "")
		c.close()
		if c.status != http.StatusBadRequest {
			t.Fatalf("query %q: status %d, want 400", q, c.status)
		}
	}
}

// waitFor polls cond until true or the deadline fails the test.
func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not met before deadline")
}

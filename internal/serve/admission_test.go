package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestAdmissionAdmitUpToCapacity(t *testing.T) {
	a := newAdmission(2, 4, nil)
	ctx := context.Background()
	if err := a.acquire(ctx, defaultTenant); err != nil {
		t.Fatal(err)
	}
	if err := a.acquire(ctx, defaultTenant); err != nil {
		t.Fatal(err)
	}
	if in, q := a.stats(); in != 2 || q != 0 {
		t.Fatalf("stats = (%d, %d), want (2, 0)", in, q)
	}
	a.release()
	a.release()
	if in, q := a.stats(); in != 0 || q != 0 {
		t.Fatalf("after release stats = (%d, %d), want (0, 0)", in, q)
	}
}

func TestAdmissionShedsWhenQueueFull(t *testing.T) {
	a := newAdmission(1, 0, nil)
	if err := a.acquire(context.Background(), defaultTenant); err != nil {
		t.Fatal(err)
	}
	err := a.acquire(context.Background(), defaultTenant)
	if !errors.Is(err, errShed) {
		t.Fatalf("err = %v, want errShed", err)
	}
	a.release()
}

func TestAdmissionFIFOHandoff(t *testing.T) {
	a := newAdmission(1, 4, nil)
	if err := a.acquire(context.Background(), defaultTenant); err != nil {
		t.Fatal(err)
	}

	const waiters = 3
	order := make(chan int, waiters)
	var started sync.WaitGroup
	var done sync.WaitGroup
	for i := 0; i < waiters; i++ {
		i := i
		started.Add(1)
		done.Add(1)
		go func() {
			defer done.Done()
			// Serialize enqueue order: waiter i queues only after the
			// previous ones are already in the queue.
			for {
				_, q := a.stats()
				if q == i {
					break
				}
				time.Sleep(time.Millisecond)
			}
			started.Done()
			if err := a.acquire(context.Background(), defaultTenant); err != nil {
				t.Error(err)
				return
			}
			order <- i
			a.release()
		}()
	}
	started.Wait()
	a.release()
	done.Wait()
	close(order)
	want := 0
	for got := range order {
		if got != want {
			t.Fatalf("handoff order: got waiter %d, want %d", got, want)
		}
		want++
	}
}

func TestAdmissionQueuedCancel(t *testing.T) {
	a := newAdmission(1, 4, nil)
	if err := a.acquire(context.Background(), defaultTenant); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- a.acquire(ctx, defaultTenant) }()
	for {
		if _, q := a.stats(); q == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued acquire = %v, want context.Canceled", err)
	}
	// The cancelled waiter must have left the queue; the slot still
	// belongs to the first holder and a release frees it cleanly.
	if in, q := a.stats(); in != 1 || q != 0 {
		t.Fatalf("stats = (%d, %d), want (1, 0)", in, q)
	}
	a.release()
	if in, _ := a.stats(); in != 0 {
		t.Fatalf("inflight = %d after release, want 0", in)
	}
}

func TestAdmissionCancelReleaseRaceLosesNoSlot(t *testing.T) {
	// Hammer the release-while-cancelling race: whichever side wins, the
	// slot must never be lost. If a hand-off leaked, a later acquire on
	// the drained semaphore would block forever.
	a := newAdmission(1, 8, nil)
	for i := 0; i < 200; i++ {
		if err := a.acquire(context.Background(), defaultTenant); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		errCh := make(chan error, 1)
		go func() {
			err := a.acquire(ctx, defaultTenant)
			if err == nil {
				// Won the hand-off despite the cancel: give it back.
				a.release()
			}
			errCh <- err
		}()
		for {
			if _, q := a.stats(); q == 1 {
				break
			}
		}
		go cancel()
		a.release()
		<-errCh
		cancel()
		// Whatever happened, exactly the free slot must remain.
		ctx2, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
		if err := a.acquire(ctx2, defaultTenant); err != nil {
			t.Fatalf("round %d: slot lost: %v", i, err)
		}
		cancel2()
		a.release()
	}
}

package serve

// Per-tenant token-bucket rate limiting at the front door. The
// admission gate (admission.go) bounds *concurrency* — how much work
// runs at once; the rate limiter bounds *arrival rate* — how much work
// a key may even ask for per second. Internet-facing deployments need
// both: without a rate cap a single key can keep every queue slot
// permanently full while staying inside the concurrency envelope.
//
// Keys are X-API-Key values as configured (medd -rate KEY:RPS,...).
// Requests carrying an unlisted or missing key share the "default"
// bucket when one is configured; with no "default" bucket such
// requests are not rate limited (the operator opted only specific
// keys in). Exhausted buckets answer 429 + Retry-After.

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"time"
)

// RateDefaultKey is the bucket shared by unlisted and key-less
// requests, when configured.
const RateDefaultKey = "default"

type rateBucket struct {
	rps    float64
	tokens float64
	last   time.Time
}

// RateLimiter is a per-key token bucket set. Each key's bucket refills
// continuously at its configured rate and holds at most one second of
// burst. A nil *RateLimiter allows everything, so callers can wire it
// unconditionally.
type RateLimiter struct {
	mu      sync.Mutex
	buckets map[string]*rateBucket
	now     func() time.Time
}

// NewRateLimiter builds a limiter from KEY -> requests/second. Returns
// nil (allow-everything) when no limits are configured.
func NewRateLimiter(limits map[string]float64) *RateLimiter {
	if len(limits) == 0 {
		return nil
	}
	rl := &RateLimiter{buckets: make(map[string]*rateBucket, len(limits)), now: time.Now}
	for k, rps := range limits {
		rl.buckets[k] = &rateBucket{rps: rps, tokens: rps}
	}
	return rl
}

// Allow reports whether a request under key may proceed now, consuming
// one token if so. Unlisted keys fall into the "default" bucket when
// one exists and are unlimited otherwise.
func (rl *RateLimiter) Allow(key string) bool {
	if rl == nil {
		return true
	}
	rl.mu.Lock()
	defer rl.mu.Unlock()
	b := rl.buckets[key]
	if b == nil {
		b = rl.buckets[RateDefaultKey]
	}
	if b == nil {
		return true
	}
	now := rl.now()
	if !b.last.IsZero() {
		b.tokens = math.Min(b.rps, b.tokens+now.Sub(b.last).Seconds()*b.rps)
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// ParseRateSpec parses the -rate flag syntax: comma-separated KEY:RPS
// pairs (e.g. "gold:100,default:10"). Every pair needs a nonempty key
// and a positive rate; malformed specs are configuration errors, not
// something to collapse silently.
func ParseRateSpec(spec string) (map[string]float64, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	out := make(map[string]float64)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, rstr, found := strings.Cut(part, ":")
		key = strings.TrimSpace(key)
		if key == "" {
			return nil, fmt.Errorf("rate: empty key in %q", part)
		}
		if !found {
			return nil, fmt.Errorf("rate: missing rate in %q (want KEY:RPS)", part)
		}
		rps, err := strconv.ParseFloat(strings.TrimSpace(rstr), 64)
		if err != nil || rps <= 0 || math.IsInf(rps, 0) || math.IsNaN(rps) {
			return nil, fmt.Errorf("rate: bad rate in %q (want a positive number)", part)
		}
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("rate: duplicate key %q", key)
		}
		out[key] = rps
	}
	return out, nil
}

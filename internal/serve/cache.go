package serve

import (
	"container/list"
	"context"
	"errors"
	"sync"

	"modelmed/internal/mediator"
)

// The answer cache. Keys are normalized query renderings (parsed body,
// selected vars, planned flag), so textual variants of one query share
// an entry. Entries live in per-tenant partitions: a tenant can only
// hit answers its own traffic computed, and one tenant's churn cannot
// evict another's working set (tenant identity is operator-defined, so
// the partition count is bounded — see defaultTenant). Each entry
// records which sources the answer was computed from; the incremental
// bridge (/v1/delta, /v1/sync) invalidates exactly the entries
// depending on the changed source across every partition — queries
// over derived views or unconstrained source positions depend on
// everything and are tracked as global.
//
// Duplicate concurrent misses collapse into one computation
// (single-flight): the first request becomes the leader and computes
// under an admission slot; followers wait on the leader's result
// without consuming slots. Flights are scoped per tenant, so
// collapsing never leaks an answer (or a failure) across tenants. If
// the leader dies of its *own* context — client gone, per-request
// deadline — a follower whose context is still live does not inherit
// that death: it retries, finding the published answer, joining a
// newer flight, or becoming the new leader under its own context.
// A generation counter guards the insert: a flight that started
// before an invalidation must not publish its (pre-delta) answer
// after it, so the leader snapshots the generation at flight start
// and the insert is skipped if it moved.

// cached is the value the cache stores and the flight produces.
type cached struct {
	Ans       *mediator.Answer
	PlanTrace []string
}

type cacheEntry struct {
	key    string
	val    cached
	deps   []string
	global bool
	elem   *list.Element
}

type flight struct {
	done chan struct{}
	val  cached
	err  error
}

// cachePart is one tenant's entry map + LRU list. Every partition gets
// the full configured capacity.
type cachePart struct {
	entries map[string]*cacheEntry
	lru     *list.List // front = most recently used
}

type answerCache struct {
	mu      sync.Mutex
	cap     int
	parts   map[string]*cachePart
	flights map[string]*flight // keyed tenant + "\x00" + query key
	gen     uint64             // bumped by every invalidation
}

func newAnswerCache(capacity int) *answerCache {
	if capacity <= 0 {
		capacity = 256
	}
	return &answerCache{
		cap:     capacity,
		parts:   make(map[string]*cachePart),
		flights: make(map[string]*flight),
	}
}

func (c *answerCache) partLocked(tenant string) *cachePart {
	p := c.parts[tenant]
	if p == nil {
		p = &cachePart{entries: make(map[string]*cacheEntry), lru: list.New()}
		c.parts[tenant] = p
	}
	return p
}

// get returns a cached answer from the tenant's partition and bumps
// its recency.
func (c *answerCache) get(tenant, key string) (cached, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.parts[tenant]
	if p == nil {
		return cached{}, false
	}
	e, ok := p.entries[key]
	if !ok {
		return cached{}, false
	}
	p.lru.MoveToFront(e.elem)
	return e.val, true
}

// outcome classifies how do() produced its answer.
type outcome int

const (
	outcomeHit outcome = iota
	outcomeComputed
	outcomeCollapsed
)

// isCtxError reports whether err is the death of some context — the
// only errors a follower must not inherit from a cancelled leader,
// since they describe the leader's request, not the query.
func isCtxError(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// do returns the answer for (tenant, key): from the tenant's cache
// partition, from an in-flight leader's result, or by computing it
// (becoming the leader). compute runs without c.mu held; the caller
// does its own admission inside it.
//
// The loop is the leader-cancellation fix: a follower that watched the
// leader fail with the leader's own context error retries while its
// own context is live, instead of propagating a failure that says
// nothing about the query. By the time the follower re-enters, the
// dead flight is already unlinked (the leader closes done only after
// removing itself), so the retry finds the cache, a newer flight, or
// leadership — it cannot spin on the corpse.
func (c *answerCache) do(ctx context.Context, tenant, key string, deps []string, global bool,
	compute func() (cached, error)) (cached, outcome, error) {
	fk := tenant + "\x00" + key
	for {
		c.mu.Lock()
		if p := c.parts[tenant]; p != nil {
			if e, ok := p.entries[key]; ok {
				p.lru.MoveToFront(e.elem)
				val := e.val
				c.mu.Unlock()
				return val, outcomeHit, nil
			}
		}
		if f, ok := c.flights[fk]; ok {
			c.mu.Unlock()
			select {
			case <-f.done:
				if isCtxError(f.err) && ctx.Err() == nil {
					continue
				}
				return f.val, outcomeCollapsed, f.err
			case <-ctx.Done():
				return cached{}, outcomeCollapsed, ctx.Err()
			}
		}
		f := &flight{done: make(chan struct{})}
		c.flights[fk] = f
		snap := c.gen
		c.mu.Unlock()

		f.val, f.err = compute()

		// Unlink the flight and publish the answer before waking the
		// followers: a follower that retries after done must observe
		// the world post-flight, or it could rejoin this same corpse
		// forever.
		c.mu.Lock()
		delete(c.flights, fk)
		if f.err == nil && c.gen == snap {
			c.insertLocked(tenant, key, f.val, deps, global)
		}
		c.mu.Unlock()
		close(f.done)
		return f.val, outcomeComputed, f.err
	}
}

// insertLocked adds an entry to the tenant's partition and evicts past
// capacity. Called with c.mu held.
func (c *answerCache) insertLocked(tenant, key string, val cached, deps []string, global bool) {
	p := c.partLocked(tenant)
	if e, ok := p.entries[key]; ok {
		e.val = val
		p.lru.MoveToFront(e.elem)
		return
	}
	e := &cacheEntry{key: key, val: val, deps: deps, global: global}
	e.elem = p.lru.PushFront(e)
	p.entries[key] = e
	for p.lru.Len() > c.cap {
		back := p.lru.Back()
		old := back.Value.(*cacheEntry)
		p.lru.Remove(back)
		delete(p.entries, old.key)
	}
}

// invalidateSource drops every entry depending on the named source
// (plus all global entries) in every partition and bumps the
// generation so racing flights cannot re-publish pre-delta answers.
// Returns how many entries fell.
func (c *answerCache) invalidateSource(source string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	var dropped int
	for _, p := range c.parts {
		for key, e := range p.entries {
			hit := e.global
			for _, d := range e.deps {
				if d == source {
					hit = true
					break
				}
			}
			if hit {
				p.lru.Remove(e.elem)
				delete(p.entries, key)
				dropped++
			}
		}
	}
	return dropped
}

// invalidateAll clears every partition (full rebuilds, view/knowledge
// registration).
func (c *answerCache) invalidateAll() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	var dropped int
	for _, p := range c.parts {
		dropped += len(p.entries)
	}
	c.parts = make(map[string]*cachePart)
	return dropped
}

// size returns the number of cached entries across all partitions.
func (c *answerCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n int
	for _, p := range c.parts {
		n += len(p.entries)
	}
	return n
}

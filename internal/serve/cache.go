package serve

import (
	"container/list"
	"context"
	"sync"

	"modelmed/internal/mediator"
)

// The answer cache. Keys are normalized query renderings (parsed body,
// selected vars, planned flag), so textual variants of one query share
// an entry. Each entry records which sources the answer was computed
// from; the incremental bridge (/v1/delta, /v1/sync) invalidates
// exactly the entries depending on the changed source — queries over
// derived views or unconstrained source positions depend on everything
// and are tracked as global.
//
// Duplicate concurrent misses collapse into one computation
// (single-flight): the first request becomes the leader and computes
// under an admission slot; followers wait on the leader's result
// without consuming slots. A generation counter guards the insert: a
// flight that started before an invalidation must not publish its
// (pre-delta) answer after it, so the leader snapshots the generation
// at flight start and the insert is skipped if it moved.

// cached is the value the cache stores and the flight produces.
type cached struct {
	Ans       *mediator.Answer
	PlanTrace []string
}

type cacheEntry struct {
	key    string
	val    cached
	deps   []string
	global bool
	elem   *list.Element
}

type flight struct {
	done chan struct{}
	val  cached
	err  error
}

type answerCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*cacheEntry
	lru     *list.List // front = most recently used
	flights map[string]*flight
	gen     uint64 // bumped by every invalidation
}

func newAnswerCache(capacity int) *answerCache {
	if capacity <= 0 {
		capacity = 256
	}
	return &answerCache{
		cap:     capacity,
		entries: make(map[string]*cacheEntry),
		lru:     list.New(),
		flights: make(map[string]*flight),
	}
}

// get returns a cached answer and bumps its recency.
func (c *answerCache) get(key string) (cached, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return cached{}, false
	}
	c.lru.MoveToFront(e.elem)
	return e.val, true
}

// outcome classifies how do() produced its answer.
type outcome int

const (
	outcomeHit outcome = iota
	outcomeComputed
	outcomeCollapsed
)

// do returns the answer for key: from the cache, from an in-flight
// leader's result, or by computing it (becoming the leader). compute
// runs without c.mu held; the caller does its own admission inside it.
func (c *answerCache) do(ctx context.Context, key string, deps []string, global bool,
	compute func() (cached, error)) (cached, outcome, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.lru.MoveToFront(e.elem)
		val := e.val
		c.mu.Unlock()
		return val, outcomeHit, nil
	}
	if f, ok := c.flights[key]; ok {
		c.mu.Unlock()
		select {
		case <-f.done:
			return f.val, outcomeCollapsed, f.err
		case <-ctx.Done():
			return cached{}, outcomeCollapsed, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	snap := c.gen
	c.mu.Unlock()

	f.val, f.err = compute()
	close(f.done)

	c.mu.Lock()
	delete(c.flights, key)
	if f.err == nil && c.gen == snap {
		c.insertLocked(key, f.val, deps, global)
	}
	c.mu.Unlock()
	return f.val, outcomeComputed, f.err
}

// insertLocked adds an entry and evicts past capacity. Called with
// c.mu held.
func (c *answerCache) insertLocked(key string, val cached, deps []string, global bool) {
	if e, ok := c.entries[key]; ok {
		e.val = val
		c.lru.MoveToFront(e.elem)
		return
	}
	e := &cacheEntry{key: key, val: val, deps: deps, global: global}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		old := back.Value.(*cacheEntry)
		c.lru.Remove(back)
		delete(c.entries, old.key)
	}
}

// invalidateSource drops every entry depending on the named source
// (plus all global entries) and bumps the generation so racing flights
// cannot re-publish pre-delta answers. Returns how many entries fell.
func (c *answerCache) invalidateSource(source string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	var dropped int
	for key, e := range c.entries {
		hit := e.global
		for _, d := range e.deps {
			if d == source {
				hit = true
				break
			}
		}
		if hit {
			c.lru.Remove(e.elem)
			delete(c.entries, key)
			dropped++
		}
	}
	return dropped
}

// invalidateAll clears the cache (full rebuilds, view/knowledge
// registration).
func (c *answerCache) invalidateAll() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	dropped := len(c.entries)
	c.entries = make(map[string]*cacheEntry)
	c.lru.Init()
	return dropped
}

// size returns the number of cached entries.
func (c *answerCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

package wrapper

import (
	"os"
	"strings"
	"testing"

	"modelmed/internal/gcm"
	"modelmed/internal/term"
	"modelmed/internal/xmlio"
)

func a(s string) term.Term { return term.Atom(s) }

func testModel() *gcm.Model {
	m := gcm.NewModel("SYNAPSE")
	m.AddClass(&gcm.Class{Name: "compartment"})
	m.AddClass(&gcm.Class{Name: "neuron", Methods: []gcm.MethodSig{
		{Name: "organism", Result: "string"},
		{Name: "location", Result: "string", Anchor: true},
	}})
	m.AddClass(&gcm.Class{Name: "spiny_neuron", Super: []string{"neuron"}})
	m.AddRelation(&gcm.Relation{Name: "has", Attrs: []gcm.RelAttr{
		{Name: "whole", Class: "neuron"},
		{Name: "part", Class: "compartment"},
	}})
	m.AddObject(gcm.Object{ID: a("n1"), Class: "neuron", Values: map[string][]term.Term{
		"organism": {term.Str("rat")}, "location": {a("pyramidal_cell")}}})
	m.AddObject(gcm.Object{ID: a("n2"), Class: "spiny_neuron", Values: map[string][]term.Term{
		"organism": {term.Str("mouse")}, "location": {a("purkinje_cell")}}})
	m.AddTuple("has", a("n1"), a("c1"))
	m.AddTuple("has", a("n2"), a("c2"))
	return m
}

func TestDefaultCapabilities(t *testing.T) {
	w, err := NewInMemory(testModel())
	if err != nil {
		t.Fatal(err)
	}
	caps := w.Capabilities()
	// 3 classes + 1 relation.
	if len(caps) != 4 {
		t.Errorf("caps = %v", caps)
	}
	for _, c := range caps {
		if c.Kind != CapClassScan && c.Kind != CapRelScan {
			t.Errorf("default capability should be a scan: %v", c)
		}
	}
}

func TestQueryObjectsScan(t *testing.T) {
	w, _ := NewInMemory(testModel())
	objs, err := w.QueryObjects(Query{Target: "neuron"})
	if err != nil {
		t.Fatal(err)
	}
	// Subclass instances are included in a class scan.
	if len(objs) != 2 {
		t.Errorf("objs = %v", objs)
	}
	objs, err = w.QueryObjects(Query{Target: "spiny_neuron"})
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 1 || !objs[0].ID.Equal(a("n2")) {
		t.Errorf("spiny objs = %v", objs)
	}
}

func TestSelectionRequiresCapability(t *testing.T) {
	w, _ := NewInMemory(testModel())
	_, err := w.QueryObjects(Query{Target: "neuron",
		Selections: []Selection{{Attr: "organism", Value: term.Str("rat")}}})
	if err == nil || !strings.Contains(err.Error(), "no capability") {
		t.Errorf("scan-only wrapper must reject selections: %v", err)
	}
}

func TestSelectionPushdown(t *testing.T) {
	w, _ := NewInMemory(testModel(),
		Capability{Target: "neuron", Kind: CapClassSelect, Bindable: []string{"organism", "location"}},
	)
	objs, err := w.QueryObjects(Query{Target: "neuron",
		Selections: []Selection{{Attr: "organism", Value: term.Str("rat")}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 1 || !objs[0].ID.Equal(a("n1")) {
		t.Errorf("objs = %v", objs)
	}
	// Selection on a non-bindable attribute still rejected.
	if _, err := w.QueryObjects(Query{Target: "neuron",
		Selections: []Selection{{Attr: "ghost", Value: a("x")}}}); err == nil {
		t.Error("non-bindable selection should be rejected")
	}
	// A select capability also covers plain scans.
	if _, err := w.QueryObjects(Query{Target: "neuron"}); err != nil {
		t.Errorf("select capability should allow scans: %v", err)
	}
}

func TestQueryTuples(t *testing.T) {
	w, _ := NewInMemory(testModel(),
		Capability{Target: "has", Kind: CapRelSelect, Bindable: []string{"whole"}})
	tps, err := w.QueryTuples(Query{Target: "has"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tps) != 2 {
		t.Errorf("tuples = %v", tps)
	}
	tps, err = w.QueryTuples(Query{Target: "has",
		Selections: []Selection{{Attr: "whole", Value: a("n1")}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tps) != 1 || !tps[0][1].Equal(a("c1")) {
		t.Errorf("selected tuples = %v", tps)
	}
}

func TestAnchors(t *testing.T) {
	w, _ := NewInMemory(testModel())
	anchors, err := w.Anchors()
	if err != nil {
		t.Fatal(err)
	}
	if len(anchors["pyramidal_cell"]) != 1 || len(anchors["purkinje_cell"]) != 1 {
		t.Errorf("anchors = %v", anchors)
	}
}

func TestExportCMWire(t *testing.T) {
	w, _ := NewInMemory(testModel())
	format, doc, err := w.ExportCM()
	if err != nil {
		t.Fatal(err)
	}
	if format != "gcmx" {
		t.Errorf("format = %s", format)
	}
	m2, err := xmlio.DecodeModel(doc)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Name != "SYNAPSE" || len(m2.Objects) != 2 {
		t.Errorf("wire round trip lost data: %s %d", m2.Name, len(m2.Objects))
	}
}

func TestStats(t *testing.T) {
	w, _ := NewInMemory(testModel())
	if _, err := w.QueryObjects(Query{Target: "neuron"}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.QueryTuples(Query{Target: "has"}); err != nil {
		t.Fatal(err)
	}
	s := w.Stats()
	if s.Queries != 2 || s.ObjectsReturned != 2 || s.TuplesReturned != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestInvalidModelRejected(t *testing.T) {
	m := gcm.NewModel("bad")
	m.AddClass(&gcm.Class{Name: "c", Super: []string{"ghost"}})
	if _, err := NewInMemory(m); err == nil {
		t.Error("invalid model should be rejected at wrap time")
	}
}

func TestCapKindString(t *testing.T) {
	if CapClassScan.String() != "class-scan" || CapRelSelect.String() != "rel-select" {
		t.Error("CapKind strings wrong")
	}
}

func TestQueryTemplate(t *testing.T) {
	w, _ := NewInMemory(testModel())
	w.RegisterTemplate("by_organism", []string{"organism"},
		func(m *gcm.Model, params map[string]term.Term) ([]gcm.Object, error) {
			var out []gcm.Object
			for _, o := range m.Objects {
				for _, v := range o.Values["organism"] {
					if v.Equal(params["organism"]) {
						out = append(out, o)
					}
				}
			}
			return out, nil
		})
	// Declared in capabilities.
	found := false
	for _, c := range w.Capabilities() {
		if c.Kind == CapTemplate && c.Target == "by_organism" {
			found = true
		}
	}
	if !found {
		t.Error("template capability should be declared")
	}
	objs, err := w.QueryTemplate("by_organism", map[string]term.Term{"organism": term.Str("rat")})
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 1 || !objs[0].ID.Equal(a("n1")) {
		t.Errorf("objs = %v", objs)
	}
	// Unknown template and unknown parameter are rejected.
	if _, err := w.QueryTemplate("ghost", nil); err == nil {
		t.Error("unknown template should fail")
	}
	if _, err := w.QueryTemplate("by_organism", map[string]term.Term{"bogus": a("x")}); err == nil {
		t.Error("unknown parameter should fail")
	}
	if w.Stats().Queries == 0 {
		t.Error("template calls should count in stats")
	}
}

func TestFromGCMXRoundTrip(t *testing.T) {
	doc, err := xmlio.EncodeModel(testModel())
	if err != nil {
		t.Fatal(err)
	}
	w, err := FromGCMX(doc)
	if err != nil {
		t.Fatal(err)
	}
	objs, err := w.QueryObjects(Query{Target: "neuron"})
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 {
		t.Errorf("objs = %d", len(objs))
	}
	if _, err := FromGCMX([]byte("<bogus/>")); err == nil {
		t.Error("invalid document should be rejected")
	}
}

func TestFromGCMXFile(t *testing.T) {
	doc, err := xmlio.EncodeModel(testModel())
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/src.gcmx"
	if err := os.WriteFile(path, doc, 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := FromGCMXFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name() != "SYNAPSE" {
		t.Errorf("name = %s", w.Name())
	}
	if _, err := FromGCMXFile(path + ".missing"); err == nil {
		t.Error("missing file should error")
	}
}

// Package wrapper implements the wrapper side of the model-based
// mediator architecture (Section 2): a wrapped source exports its
// conceptual model CM(S) in XML, describes its query capabilities (the
// usually very limited "logical API" for retrieving object instances,
// plus optional binding patterns that let the mediator push selections
// down), and anchors its objects at domain-map concepts.
package wrapper

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"modelmed/internal/gcm"
	"modelmed/internal/obs"
	"modelmed/internal/term"
	"modelmed/internal/xmlio"
)

// CapKind distinguishes capability templates.
type CapKind int

const (
	// CapClassScan: enumerate all instances of a class.
	CapClassScan CapKind = iota
	// CapClassSelect: enumerate instances of a class with selections on
	// the listed bindable methods pushed down.
	CapClassSelect
	// CapRelScan: enumerate all tuples of a relation.
	CapRelScan
	// CapRelSelect: enumerate tuples with selections on the listed
	// bindable attributes pushed down.
	CapRelSelect
	// CapTemplate: a named, parameterized query the source answers
	// natively (the paper's "query templates"). Target is the template
	// name; Bindable lists the parameter names.
	CapTemplate
)

func (k CapKind) String() string {
	switch k {
	case CapClassScan:
		return "class-scan"
	case CapClassSelect:
		return "class-select"
	case CapRelScan:
		return "rel-scan"
	case CapRelSelect:
		return "rel-select"
	case CapTemplate:
		return "template"
	}
	return "invalid"
}

// Capability is one query template a source supports. Bindable lists the
// method/attribute names that may carry pushed-down selections (the
// paper's binding patterns).
type Capability struct {
	Target   string
	Kind     CapKind
	Bindable []string
}

// Selection is an attribute = value filter.
type Selection struct {
	Attr  string
	Value term.Term
}

// Query is a request the mediator sends to a wrapper: a target class or
// relation plus selections. Selections must be covered by a declared
// capability; otherwise the wrapper rejects the query and the mediator
// must scan and filter locally.
type Query struct {
	Target     string
	Selections []Selection
}

// Stats counts the traffic a wrapper has served, for the push-down
// benchmarks.
type Stats struct {
	Queries         int
	ObjectsReturned int
	TuplesReturned  int
}

// Wrapper is the mediator-facing interface of a wrapped source.
type Wrapper interface {
	// Name identifies the source.
	Name() string
	// ExportCM serializes the source's conceptual model for the wire,
	// returning the CM format name and the XML document.
	ExportCM() (format string, doc []byte, err error)
	// Capabilities describes the source's query templates.
	Capabilities() []Capability
	// Anchors returns the semantic coordinates of the source's data:
	// domain-map concept -> anchored object IDs.
	Anchors() (map[string][]term.Term, error)
	// Contexts returns the source-level context summary: context
	// attribute -> distinct values occurring in the data (organism,
	// condition, ...), used to refine source selection.
	Contexts() (map[string][]term.Term, error)
	// QueryObjects returns the objects of a class matching the query.
	QueryObjects(q Query) ([]gcm.Object, error)
	// QueryTuples returns the tuples of a relation matching the query.
	QueryTuples(q Query) ([][]term.Term, error)
	// QueryTemplate invokes a named query template with parameters. It
	// fails unless a CapTemplate capability declares the template.
	QueryTemplate(name string, params map[string]term.Term) ([]gcm.Object, error)
	// Stats reports the traffic served so far.
	Stats() Stats
}

// Versioned is an optional wrapper capability: sources whose data can
// change in place expose a monotonically increasing data version. The
// mediator records the version it materialized from and, on
// SyncSources, re-pulls and diffs only the sources whose version moved
// — the change-detection half of incremental view maintenance. A
// version of 0 means "unversioned" and is never considered changed.
type Versioned interface {
	DataVersion() uint64
}

// CounterSink is implemented by wrappers that can report per-call
// latency/outcome counters into an observability sink. The mediator
// attaches its counter set when tracing is enabled (and detaches with
// nil when disabled); a wrapper with no sink records nothing. Counter
// names follow "wrapper.<source>.<metric>" — see DESIGN.md,
// "Observability".
type CounterSink interface {
	SetObsCounters(c *obs.Counters)
}

// obsEnd charges one finished wrapper call to a sink; a nil sink is a
// no-op. kind ("objects"/"tuples") labels the success payload counter.
func obsEnd(c *obs.Counters, name string, start time.Time, kind string, n int, err error) {
	if c == nil {
		return
	}
	c.Add("wrapper."+name+".calls", 1)
	c.Add("wrapper."+name+".latency_ns", time.Since(start).Nanoseconds())
	if err != nil {
		c.Add("wrapper."+name+".errors", 1)
	} else if kind != "" {
		c.Add("wrapper."+name+"."+kind, int64(n))
	}
}

// TemplateFunc answers one query template over a model.
type TemplateFunc func(m *gcm.Model, params map[string]term.Term) ([]gcm.Object, error)

// InMemory is a Wrapper over an in-process gcm.Model; the standard test
// and simulation substrate for sources.
type InMemory struct {
	mu        sync.Mutex
	model     *gcm.Model
	caps      []Capability
	templates map[string]TemplateFunc
	stats     Stats
	obsC      *obs.Counters
	version   uint64
	subs      map[int]chan DeltaBatch // live streaming subscribers
	nextSub   int
}

// SetObsCounters implements CounterSink.
func (w *InMemory) SetObsCounters(c *obs.Counters) {
	w.mu.Lock()
	w.obsC = c
	w.mu.Unlock()
}

// obsStart returns the attached sink (nil when observability is off)
// and the call start time; the clock is only read when a sink is set.
func (w *InMemory) obsStart() (*obs.Counters, time.Time) {
	w.mu.Lock()
	c := w.obsC
	w.mu.Unlock()
	if c == nil {
		return nil, time.Time{}
	}
	return c, time.Now()
}

// NewInMemory wraps a model with the given capabilities. If caps is
// empty, minimal capabilities (scans of every class and relation) are
// derived, matching the paper's "minimally specify means for browsing
// through all instances".
func NewInMemory(m *gcm.Model, caps ...Capability) (*InMemory, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if len(caps) == 0 {
		var names []string
		for n := range m.Classes {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			caps = append(caps, Capability{Target: n, Kind: CapClassScan})
		}
		names = names[:0]
		for n := range m.Relations {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			caps = append(caps, Capability{Target: n, Kind: CapRelScan})
		}
	}
	return &InMemory{model: m, caps: caps, templates: map[string]TemplateFunc{}}, nil
}

// RegisterTemplate installs a named query template and declares the
// corresponding capability.
func (w *InMemory) RegisterTemplate(name string, params []string, fn TemplateFunc) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.templates[name] = fn
	w.caps = append(w.caps, Capability{Target: name, Kind: CapTemplate, Bindable: params})
}

// QueryTemplate implements Wrapper.
func (w *InMemory) QueryTemplate(name string, params map[string]term.Term) ([]gcm.Object, error) {
	ctr, start := w.obsStart()
	w.mu.Lock()
	fn := w.templates[name]
	var cap Capability
	declared := false
	for _, c := range w.caps {
		if c.Kind == CapTemplate && c.Target == name {
			cap, declared = c, true
			break
		}
	}
	w.mu.Unlock()
	if fn == nil || !declared {
		err := fmt.Errorf("wrapper %s: no template %q", w.model.Name, name)
		obsEnd(ctr, w.model.Name, start, "", 0, err)
		return nil, err
	}
	for p := range params {
		ok := false
		for _, b := range cap.Bindable {
			if b == p {
				ok = true
				break
			}
		}
		if !ok {
			err := fmt.Errorf("wrapper %s: template %q has no parameter %q (has %v)",
				w.model.Name, name, p, cap.Bindable)
			obsEnd(ctr, w.model.Name, start, "", 0, err)
			return nil, err
		}
	}
	w.mu.Lock()
	objs, err := fn(w.model, params)
	if err != nil {
		w.mu.Unlock()
		obsEnd(ctr, w.model.Name, start, "", 0, err)
		return nil, err
	}
	w.stats.Queries++
	w.stats.ObjectsReturned += len(objs)
	w.mu.Unlock()
	obsEnd(ctr, w.model.Name, start, "objects", len(objs), nil)
	return objs, nil
}

// Name implements Wrapper.
func (w *InMemory) Name() string { return w.model.Name }

// DataVersion implements Versioned: it starts at 1 and each Mutate
// bumps it.
func (w *InMemory) DataVersion() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.version + 1
}

// Mutate applies fn to the wrapped model and bumps the data version so
// the mediator's SyncSources notices the change. fn runs under the
// wrapper mutex, which orders concurrent Mutate calls and version
// reads; callers remain responsible for not mutating the model while a
// query fan-out is reading it (the mediator's Refresh/Sync path pulls a
// consistent snapshot after the mutation, so mutate-then-sync is the
// intended sequence). When streaming subscribers are attached
// (SubscribeDeltas), the pre-mutation state is snapshotted, diffed
// against the result, and the versioned delta batch pushed to every
// subscriber.
func (w *InMemory) Mutate(fn func(m *gcm.Model)) {
	w.mu.Lock()
	defer w.mu.Unlock()
	var pre *streamState
	if len(w.subs) > 0 {
		pre = newStreamState(w.model)
	}
	fn(w.model)
	w.version++
	w.emitLocked(pre)
}

// Model exposes the wrapped model (for in-process tooling; the mediator
// uses ExportCM).
func (w *InMemory) Model() *gcm.Model { return w.model }

// ExportCM implements Wrapper using the GCMX codec. The encode runs
// under the wrapper mutex so a concurrent Mutate (a live streaming
// source) cannot tear the snapshot.
func (w *InMemory) ExportCM() (string, []byte, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	doc, err := xmlio.EncodeModel(w.model)
	return "gcmx", doc, err
}

// Capabilities implements Wrapper.
func (w *InMemory) Capabilities() []Capability {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]Capability, len(w.caps))
	copy(out, w.caps)
	return out
}

// Anchors implements Wrapper from the model's anchor-marked methods.
func (w *InMemory) Anchors() (map[string][]term.Term, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.model.AnchorValues(), nil
}

// Contexts implements Wrapper from the model's context-marked methods.
func (w *InMemory) Contexts() (map[string][]term.Term, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.model.ContextValues(), nil
}

// capabilityFor finds a capability covering the query, or an error
// explaining what is missing. The capability list is snapshotted under
// the mutex: RegisterTemplate may append concurrently with queries
// issued by the mediator's parallel fan-out.
func (w *InMemory) capabilityFor(q Query, wantClass bool) (Capability, error) {
	var scanKind, selKind CapKind
	if wantClass {
		scanKind, selKind = CapClassScan, CapClassSelect
	} else {
		scanKind, selKind = CapRelScan, CapRelSelect
	}
	w.mu.Lock()
	caps := w.caps
	w.mu.Unlock()
	for _, c := range caps {
		if c.Target != q.Target {
			continue
		}
		if len(q.Selections) == 0 && (c.Kind == scanKind || c.Kind == selKind) {
			return c, nil
		}
		if c.Kind != selKind {
			continue
		}
		covered := true
		for _, s := range q.Selections {
			found := false
			for _, b := range c.Bindable {
				if b == s.Attr {
					found = true
					break
				}
			}
			if !found {
				covered = false
				break
			}
		}
		if covered {
			return c, nil
		}
	}
	return Capability{}, fmt.Errorf("wrapper %s: no capability covers query on %s with selections %v",
		w.model.Name, q.Target, q.Selections)
}

// classAndDescendants returns the target class and its declared
// subclasses (transitively).
func (w *InMemory) classAndDescendants(class string) map[string]bool {
	out := map[string]bool{class: true}
	changed := true
	for changed {
		changed = false
		for name, c := range w.model.Classes {
			if out[name] {
				continue
			}
			for _, s := range c.Super {
				if out[s] {
					out[name] = true
					changed = true
					break
				}
			}
		}
	}
	return out
}

// QueryObjects implements Wrapper. The scan runs under the wrapper
// mutex and copies each object's value map, so callers keep a
// consistent result while concurrent Mutate calls (live streaming
// sources) change the model underneath.
func (w *InMemory) QueryObjects(q Query) ([]gcm.Object, error) {
	ctr, start := w.obsStart()
	if _, err := w.capabilityFor(q, true); err != nil {
		obsEnd(ctr, w.model.Name, start, "", 0, err)
		return nil, err
	}
	w.mu.Lock()
	classes := w.classAndDescendants(q.Target)
	var out []gcm.Object
	for _, o := range w.model.Objects {
		if !classes[o.Class] {
			continue
		}
		if !matchSelections(o.Values, q.Selections) {
			continue
		}
		vals := make(map[string][]term.Term, len(o.Values))
		for k, v := range o.Values {
			vals[k] = v
		}
		o.Values = vals
		out = append(out, o)
	}
	w.stats.Queries++
	w.stats.ObjectsReturned += len(out)
	w.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID.Compare(out[j].ID) < 0 })
	obsEnd(ctr, w.model.Name, start, "objects", len(out), nil)
	return out, nil
}

func matchSelections(values map[string][]term.Term, sels []Selection) bool {
	for _, s := range sels {
		hit := false
		for _, v := range values[s.Attr] {
			if v.Equal(s.Value) {
				hit = true
				break
			}
		}
		if !hit {
			return false
		}
	}
	return true
}

// QueryTuples implements Wrapper. Selections address relation attributes
// by name.
func (w *InMemory) QueryTuples(q Query) ([][]term.Term, error) {
	ctr, start := w.obsStart()
	if _, err := w.capabilityFor(q, false); err != nil {
		obsEnd(ctr, w.model.Name, start, "", 0, err)
		return nil, err
	}
	w.mu.Lock()
	rel := w.model.Relations[q.Target]
	if rel == nil {
		w.mu.Unlock()
		err := fmt.Errorf("wrapper %s: unknown relation %s", w.model.Name, q.Target)
		obsEnd(ctr, w.model.Name, start, "", 0, err)
		return nil, err
	}
	pos := map[string]int{}
	for i, a := range rel.Attrs {
		pos[a.Name] = i
	}
	var out [][]term.Term
	for _, tp := range w.model.Tuples[q.Target] {
		ok := true
		for _, s := range q.Selections {
			i, known := pos[s.Attr]
			if !known || !tp[i].Equal(s.Value) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, tp)
		}
	}
	w.stats.Queries++
	w.stats.TuplesReturned += len(out)
	w.mu.Unlock()
	obsEnd(ctr, w.model.Name, start, "tuples", len(out), nil)
	return out, nil
}

// Stats implements Wrapper.
func (w *InMemory) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// FromGCMXFile builds a wrapper from a GCMX document on disk: a source
// defined purely by an interchange file. The document is validated
// against the GCMX structure before decoding.
func FromGCMXFile(path string, caps ...Capability) (*InMemory, error) {
	doc, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("wrapper: %w", err)
	}
	return FromGCMX(doc, caps...)
}

// FromGCMX builds a wrapper from GCMX document bytes.
func FromGCMX(doc []byte, caps ...Capability) (*InMemory, error) {
	if err := xmlio.ValidateGCMX(doc); err != nil {
		return nil, err
	}
	m, err := xmlio.DecodeModel(doc)
	if err != nil {
		return nil, err
	}
	return NewInMemory(m, caps...)
}

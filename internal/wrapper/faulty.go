package wrapper

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"modelmed/internal/gcm"
	"modelmed/internal/obs"
	"modelmed/internal/term"
)

// Faulty decorates a Wrapper with a seeded, deterministic fault
// schedule: transient errors, injected latency, hangs (a call that
// sleeps past any reasonable deadline before answering) and truncated
// result sets. It is the chaos-testing substrate for the mediator's
// fault-tolerance layer: because every fault decision is a pure
// function of (seed, call site, call ordinal), a failing schedule
// reproduces exactly under any goroutine interleaving.
//
// A call site is the (operation, target, selections/params) tuple of a
// query, so the retries the mediator issues for one logical query walk
// one deterministic schedule regardless of what other sources or plan
// steps do concurrently.
type Faulty struct {
	inner Wrapper
	cfg   FaultConfig

	mu          sync.Mutex
	calls       map[string]int // call site -> total calls issued
	consec      map[string]int // call site -> consecutive injected errors
	stats       FaultStats
	streamStats StreamFaultStats
	obsC        *obs.Counters
}

// SetObsCounters implements CounterSink. The sink is attached to the
// decorator only, not the inner wrapper, so each mediator-visible call
// is counted once and injected faults are attributed to this layer
// ("wrapper.<source>.injected_*" vs. the shared per-call counters).
func (f *Faulty) SetObsCounters(c *obs.Counters) {
	f.mu.Lock()
	f.obsC = c
	f.mu.Unlock()
}

// obsStart mirrors InMemory.obsStart for the decorator layer.
func (f *Faulty) obsStart() (*obs.Counters, time.Time) {
	f.mu.Lock()
	c := f.obsC
	f.mu.Unlock()
	if c == nil {
		return nil, time.Time{}
	}
	return c, time.Now()
}

// FaultConfig is a fault schedule. The zero value injects nothing.
type FaultConfig struct {
	// Seed drives every probabilistic decision; the same seed replays
	// the same schedule.
	Seed int64
	// FailFirst fails the first N calls of every call site with a
	// transient error — the deterministic "recovers after N retries"
	// shape the retry tests pin.
	FailFirst int
	// HangFirst hangs the first N calls of every call site (sleep Hang,
	// then answer) — the deterministic "first attempt times out" shape.
	HangFirst int
	// ErrorProb injects a transient error with this probability.
	ErrorProb float64
	// MaxConsecutive caps consecutive injected errors per call site, so
	// a bounded retry loop is guaranteed to reach the real answer
	// (0 = no cap). Hangs are not counted: they are failures only in
	// the eye of the caller's deadline.
	MaxConsecutive int
	// Latency is added to every answered call.
	Latency time.Duration
	// HangProb makes an answered call sleep Hang first, simulating a
	// source that is alive but stuck; callers with a deadline shorter
	// than Hang observe a timeout.
	HangProb float64
	// Hang is the stuck duration (default 1s when a hang fires).
	Hang time.Duration
	// TruncateProb returns only a prefix of the result set with this
	// probability — partial data without an error, the failure mode a
	// mediator can only catch by equivalence checking.
	TruncateProb float64
	// Down makes every query call fail: a permanently dead source.
	Down bool
	// Stream configures faults on forwarded delta batches (Streaming).
	Stream StreamFaults
}

// FaultStats counts what the schedule actually injected.
type FaultStats struct {
	Calls       int // query calls observed
	Errors      int // transient errors injected (incl. FailFirst and Down)
	Hangs       int // hangs injected
	Truncations int // truncated result sets
}

// FaultError is the transient error Faulty injects. It unwraps to
// nothing and marks itself Transient for the mediator's retry layer.
type FaultError struct {
	Source string
	Op     string
	Call   int // per-site call ordinal, 0-based
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("wrapper %s: injected transient fault on %s (call %d)", e.Source, e.Op, e.Call)
}

// Transient marks the error as retryable.
func (e *FaultError) Transient() bool { return true }

// Transient reports whether an error is marked transient (injected
// faults, timeouts, network-style blips). Permanent errors — capability
// misses, unknown classes — are not, and must not be retried.
func Transient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// NewFaulty wraps a Wrapper with a fault schedule.
func NewFaulty(w Wrapper, cfg FaultConfig) *Faulty {
	if cfg.Hang == 0 {
		cfg.Hang = time.Second
	}
	return &Faulty{inner: w, cfg: cfg, calls: map[string]int{}, consec: map[string]int{}}
}

// Inner returns the decorated wrapper.
func (f *Faulty) Inner() Wrapper { return f.inner }

// FaultStats returns the injection counters so far.
func (f *Faulty) FaultStats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// verdict is one fault decision.
type verdict struct {
	err      error
	hang     bool
	truncate float64 // keep this fraction of the results (1 = all)
}

// decide takes the next step of the schedule for a call site. The
// random draw is seeded by (Seed, site, ordinal) so the decision for
// the n-th call of a site never depends on interleaving.
func (f *Faulty) decide(op, site string) verdict {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.calls[site]
	f.calls[site]++
	f.stats.Calls++
	ctr := f.obsC
	fail := func() verdict {
		f.stats.Errors++
		f.consec[site]++
		ctr.Add("wrapper."+f.inner.Name()+".injected_errors", 1)
		return verdict{err: &FaultError{Source: f.inner.Name(), Op: op, Call: n}}
	}
	if f.cfg.Down {
		return fail()
	}
	if n < f.cfg.FailFirst {
		return fail()
	}
	if n-f.cfg.FailFirst < f.cfg.HangFirst {
		f.stats.Hangs++
		ctr.Add("wrapper."+f.inner.Name()+".injected_hangs", 1)
		return verdict{hang: true, truncate: 1}
	}
	r := newSiteRand(f.cfg.Seed, site, n)
	if f.cfg.ErrorProb > 0 && r.Float64() < f.cfg.ErrorProb {
		if f.cfg.MaxConsecutive == 0 || f.consec[site] < f.cfg.MaxConsecutive {
			return fail()
		}
	}
	f.consec[site] = 0
	v := verdict{truncate: 1}
	if f.cfg.HangProb > 0 && r.Float64() < f.cfg.HangProb {
		f.stats.Hangs++
		ctr.Add("wrapper."+f.inner.Name()+".injected_hangs", 1)
		v.hang = true
	}
	if f.cfg.TruncateProb > 0 && r.Float64() < f.cfg.TruncateProb {
		f.stats.Truncations++
		ctr.Add("wrapper."+f.inner.Name()+".injected_truncations", 1)
		v.truncate = r.Float64()
	}
	return v
}

// apply sleeps out the verdict's latency/hang on the calling goroutine.
func (f *Faulty) apply(v verdict) {
	if v.hang {
		time.Sleep(f.cfg.Hang)
	}
	if f.cfg.Latency > 0 {
		time.Sleep(f.cfg.Latency)
	}
}

// newSiteRand seeds the (seed, site, ordinal) draw shared by the query
// and streaming fault schedules.
func newSiteRand(seed int64, site string, n int) *rand.Rand {
	return rand.New(rand.NewSource(seed ^ int64(siteHash(site)) + int64(n)*1099511628211))
}

func siteHash(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

func querySite(op string, q Query) string {
	site := op + ":" + q.Target
	for _, s := range q.Selections {
		site += "|" + s.Attr + "=" + s.Value.Key()
	}
	return site
}

// Name implements Wrapper.
func (f *Faulty) Name() string { return f.inner.Name() }

// ExportCM implements Wrapper (never faulted: registration is assumed
// to have succeeded before the chaos starts).
func (f *Faulty) ExportCM() (string, []byte, error) { return f.inner.ExportCM() }

// Capabilities implements Wrapper.
func (f *Faulty) Capabilities() []Capability { return f.inner.Capabilities() }

// Anchors implements Wrapper.
func (f *Faulty) Anchors() (map[string][]term.Term, error) { return f.inner.Anchors() }

// Contexts implements Wrapper.
func (f *Faulty) Contexts() (map[string][]term.Term, error) { return f.inner.Contexts() }

// Stats implements Wrapper.
func (f *Faulty) Stats() Stats { return f.inner.Stats() }

// DataVersion implements Versioned by forwarding to the inner wrapper
// (never faulted: version probes are cheap metadata reads). Returns 0 —
// "unversioned", never considered changed — when the inner wrapper is
// not Versioned.
func (f *Faulty) DataVersion() uint64 {
	if v, ok := f.inner.(Versioned); ok {
		return v.DataVersion()
	}
	return 0
}

// QueryObjects implements Wrapper with the fault schedule applied.
func (f *Faulty) QueryObjects(q Query) ([]gcm.Object, error) {
	ctr, start := f.obsStart()
	v := f.decide("QueryObjects", querySite("QueryObjects", q))
	if v.err != nil {
		obsEnd(ctr, f.inner.Name(), start, "", 0, v.err)
		return nil, v.err
	}
	f.apply(v)
	objs, err := f.inner.QueryObjects(q)
	if err != nil {
		obsEnd(ctr, f.inner.Name(), start, "", 0, err)
		return nil, err
	}
	objs = objs[:truncLen(len(objs), v.truncate)]
	obsEnd(ctr, f.inner.Name(), start, "objects", len(objs), nil)
	return objs, nil
}

// QueryTuples implements Wrapper with the fault schedule applied.
func (f *Faulty) QueryTuples(q Query) ([][]term.Term, error) {
	ctr, start := f.obsStart()
	v := f.decide("QueryTuples", querySite("QueryTuples", q))
	if v.err != nil {
		obsEnd(ctr, f.inner.Name(), start, "", 0, v.err)
		return nil, v.err
	}
	f.apply(v)
	tps, err := f.inner.QueryTuples(q)
	if err != nil {
		obsEnd(ctr, f.inner.Name(), start, "", 0, err)
		return nil, err
	}
	tps = tps[:truncLen(len(tps), v.truncate)]
	obsEnd(ctr, f.inner.Name(), start, "tuples", len(tps), nil)
	return tps, nil
}

// QueryTemplate implements Wrapper with the fault schedule applied.
func (f *Faulty) QueryTemplate(name string, params map[string]term.Term) ([]gcm.Object, error) {
	site := "QueryTemplate:" + name
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		site += "|" + k + "=" + params[k].Key()
	}
	ctr, start := f.obsStart()
	v := f.decide("QueryTemplate", site)
	if v.err != nil {
		obsEnd(ctr, f.inner.Name(), start, "", 0, v.err)
		return nil, v.err
	}
	f.apply(v)
	objs, err := f.inner.QueryTemplate(name, params)
	if err != nil {
		obsEnd(ctr, f.inner.Name(), start, "", 0, err)
		return nil, err
	}
	objs = objs[:truncLen(len(objs), v.truncate)]
	obsEnd(ctr, f.inner.Name(), start, "objects", len(objs), nil)
	return objs, nil
}

// truncLen maps a keep-fraction to a prefix length.
func truncLen(n int, frac float64) int {
	if frac >= 1 {
		return n
	}
	k := int(float64(n) * frac)
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}

package wrapper

import (
	"testing"
	"time"

	"modelmed/internal/datalog"
	"modelmed/internal/gcm"
	"modelmed/internal/parser"
	"modelmed/internal/term"
)

// collect drains up to n batches from ch, failing after a timeout.
func collect(t *testing.T, ch <-chan DeltaBatch, n int) []DeltaBatch {
	t.Helper()
	var out []DeltaBatch
	for len(out) < n {
		select {
		case b, ok := <-ch:
			if !ok {
				t.Fatalf("feed closed after %d of %d batches", len(out), n)
			}
			out = append(out, b)
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out after %d of %d batches", len(out), n)
		}
	}
	return out
}

func hasFact(rules []datalog.Rule, pred string, args ...term.Term) bool {
	for _, r := range rules {
		if r.Head.Pred != pred || len(r.Head.Args) != len(args) {
			continue
		}
		ok := true
		for i := range args {
			if !r.Head.Args[i].Equal(args[i]) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func addObj(id string) func(*gcm.Model) {
	return func(m *gcm.Model) {
		m.AddObject(gcm.Object{ID: a(id), Class: "neuron", Values: map[string][]term.Term{
			"organism": {term.Str("rat")}, "location": {a("dendrite")}}})
	}
}

func TestStreamEmitsVersionedBatches(t *testing.T) {
	w, _ := NewInMemory(testModel())
	ch, cancel, err := w.SubscribeDeltas(8)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	v0 := w.DataVersion()
	w.Mutate(addObj("n9"))
	b := collect(t, ch, 1)[0]
	if b.Source != "SYNAPSE" {
		t.Errorf("source = %q", b.Source)
	}
	if b.FromVersion != v0 || b.ToVersion != v0+1 {
		t.Errorf("versions = %d->%d, want %d->%d", b.FromVersion, b.ToVersion, v0, v0+1)
	}
	if !hasFact(b.Adds, PredSrcObj, a("SYNAPSE"), a("n9"), a("neuron")) {
		t.Errorf("missing src_obj add in %v", b.Adds)
	}
	if !hasFact(b.Adds, PredSrcVal, a("SYNAPSE"), a("n9"), a("location"), a("dendrite")) {
		t.Errorf("missing src_val add in %v", b.Adds)
	}
	if !hasFact(b.AnchorAdds, PredAnchor, a("SYNAPSE"), a("n9"), a("dendrite")) {
		t.Errorf("missing anchor add in %v", b.AnchorAdds)
	}
	if len(b.Dels) != 0 || len(b.AnchorDels) != 0 || b.Resync {
		t.Errorf("unexpected dels/resync: %+v", b)
	}
	// Removal chains the versions and inverts the payload.
	w.Mutate(func(m *gcm.Model) {
		for i, o := range m.Objects {
			if o.ID.Equal(a("n9")) {
				m.Objects = append(m.Objects[:i], m.Objects[i+1:]...)
				break
			}
		}
	})
	b2 := collect(t, ch, 1)[0]
	if b2.FromVersion != b.ToVersion || b2.ToVersion != b.ToVersion+1 {
		t.Errorf("versions do not chain: %d->%d after %d->%d",
			b2.FromVersion, b2.ToVersion, b.FromVersion, b.ToVersion)
	}
	if !hasFact(b2.Dels, PredSrcObj, a("SYNAPSE"), a("n9"), a("neuron")) {
		t.Errorf("missing src_obj del in %v", b2.Dels)
	}
	if !hasFact(b2.AnchorDels, PredAnchor, a("SYNAPSE"), a("n9"), a("dendrite")) {
		t.Errorf("missing anchor del in %v", b2.AnchorDels)
	}
}

func TestStreamResyncOnRuleChange(t *testing.T) {
	w, _ := NewInMemory(testModel())
	ch, cancel, err := w.SubscribeDeltas(8)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	rules, err := parser.ParseRules("big(X) :- src_obj('SYNAPSE', X, neuron).")
	if err != nil {
		t.Fatal(err)
	}
	w.Mutate(func(m *gcm.Model) { m.Rules = append(m.Rules, rules...) })
	b := collect(t, ch, 1)[0]
	if !b.Resync {
		t.Errorf("rule change must mark Resync: %+v", b)
	}
	if b.FromVersion+1 != b.ToVersion {
		t.Errorf("resync batch versions = %d->%d", b.FromVersion, b.ToVersion)
	}
}

func TestStreamSlowSubscriberDropped(t *testing.T) {
	w, _ := NewInMemory(testModel())
	ch, cancel, err := w.SubscribeDeltas(1)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	w.Mutate(addObj("s1")) // fills the buffer
	w.Mutate(addObj("s2")) // overflows: subscriber dropped
	if b := collect(t, ch, 1)[0]; !hasFact(b.Adds, PredSrcObj, a("SYNAPSE"), a("s1"), a("neuron")) {
		t.Errorf("first batch should survive: %v", b.Adds)
	}
	if _, ok := <-ch; ok {
		t.Error("overflowed subscriber should see a closed channel")
	}
	// The producer keeps going for future subscribers.
	ch2, cancel2, _ := w.SubscribeDeltas(4)
	defer cancel2()
	w.Mutate(addObj("s3"))
	if b := collect(t, ch2, 1)[0]; !hasFact(b.Adds, PredSrcObj, a("SYNAPSE"), a("s3"), a("neuron")) {
		t.Errorf("new subscriber should stream: %v", b.Adds)
	}
}

func TestStreamCancelIdempotent(t *testing.T) {
	w, _ := NewInMemory(testModel())
	ch, cancel, err := w.SubscribeDeltas(4)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	cancel() // second cancel must not double-close
	if _, ok := <-ch; ok {
		t.Error("cancelled subscription should close the channel")
	}
	w.Mutate(addObj("c1")) // no live subscribers: must not panic
}

// noStream hides the Streaming capability of an inner wrapper.
type noStream struct{ Wrapper }

func TestFaultyStreamRequiresStreamingInner(t *testing.T) {
	w, _ := NewInMemory(testModel())
	f := NewFaulty(noStream{w}, FaultConfig{})
	if _, _, err := f.SubscribeDeltas(4); err == nil {
		t.Fatal("expected error for non-streaming inner wrapper")
	}
}

func TestFaultyStreamForwardsFaithfullyByDefault(t *testing.T) {
	w, _ := NewInMemory(testModel())
	f := NewFaulty(w, FaultConfig{Seed: 1})
	ch, cancel, err := f.SubscribeDeltas(8)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	w.Mutate(addObj("f1"))
	w.Mutate(addObj("f2"))
	bs := collect(t, ch, 2)
	if bs[0].ToVersion != bs[1].FromVersion {
		t.Errorf("batches out of order: %+v", bs)
	}
}

func TestFaultyStreamDrop(t *testing.T) {
	w, _ := NewInMemory(testModel())
	f := NewFaulty(w, FaultConfig{Seed: 7, Stream: StreamFaults{DropProb: 1}})
	ch, cancel, err := f.SubscribeDeltas(8)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	w.Mutate(addObj("d1"))
	select {
	case b, ok := <-ch:
		if ok {
			t.Errorf("DropProb=1 must swallow every batch, got %+v", b)
		}
	case <-time.After(100 * time.Millisecond):
	}
	if st := f.StreamFaultStats(); st.Drops == 0 {
		t.Errorf("drop not counted: %+v", st)
	}
}

func TestFaultyStreamDuplicate(t *testing.T) {
	w, _ := NewInMemory(testModel())
	f := NewFaulty(w, FaultConfig{Seed: 7, Stream: StreamFaults{DuplicateProb: 1}})
	ch, cancel, err := f.SubscribeDeltas(8)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	w.Mutate(addObj("u1"))
	w.Mutate(addObj("u2"))
	bs := collect(t, ch, 3)
	// Second source batch is preceded by a re-send of the first: the
	// duplicate arrives with a stale ToVersion.
	if bs[1].ToVersion != bs[0].ToVersion {
		t.Errorf("expected duplicate of first batch, got %+v", bs[1])
	}
	if bs[2].FromVersion != bs[0].ToVersion {
		t.Errorf("expected real second batch last, got %+v", bs[2])
	}
	if st := f.StreamFaultStats(); st.Duplicates == 0 {
		t.Errorf("duplicate not counted: %+v", st)
	}
}

func TestFaultyStreamReorderSwapsPairs(t *testing.T) {
	w, _ := NewInMemory(testModel())
	f := NewFaulty(w, FaultConfig{Seed: 7, Stream: StreamFaults{ReorderProb: 1}})
	ch, cancel, err := f.SubscribeDeltas(8)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	w.Mutate(addObj("r1"))
	w.Mutate(addObj("r2"))
	bs := collect(t, ch, 2)
	// Batch 1 is held, batch 2 delivered first, then the held batch 1.
	if bs[0].FromVersion <= bs[1].FromVersion {
		t.Errorf("expected swapped pair, got %d->%d then %d->%d",
			bs[0].FromVersion, bs[0].ToVersion, bs[1].FromVersion, bs[1].ToVersion)
	}
	if st := f.StreamFaultStats(); st.Reorders == 0 {
		t.Errorf("reorder not counted: %+v", st)
	}
}

func TestFaultyStreamDisconnectEvery(t *testing.T) {
	w, _ := NewInMemory(testModel())
	f := NewFaulty(w, FaultConfig{Seed: 7, Stream: StreamFaults{DisconnectEvery: 2}})
	ch, _, err := f.SubscribeDeltas(8)
	if err != nil {
		t.Fatal(err)
	}
	w.Mutate(addObj("k1"))
	w.Mutate(addObj("k2"))
	bs := collect(t, ch, 2)
	if len(bs) != 2 {
		t.Fatalf("got %d batches", len(bs))
	}
	select {
	case _, ok := <-ch:
		if ok {
			t.Error("feed should disconnect after 2 batches")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("feed did not close")
	}
	if st := f.StreamFaultStats(); st.Disconnects != 1 {
		t.Errorf("disconnect not counted: %+v", st)
	}
	// A resubscribe continues the ordinal schedule: the next two
	// batches disconnect the feed again.
	ch2, cancel2, err := f.SubscribeDeltas(8)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel2()
	w.Mutate(addObj("k3"))
	w.Mutate(addObj("k4"))
	collect(t, ch2, 2)
	select {
	case _, ok := <-ch2:
		if ok {
			t.Error("resubscribed feed should disconnect again")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("resubscribed feed did not close")
	}
}

func TestFaultyStreamDeterministicSchedule(t *testing.T) {
	run := func() []uint64 {
		w, _ := NewInMemory(testModel())
		f := NewFaulty(w, FaultConfig{Seed: 42, Stream: StreamFaults{
			DropProb: 0.3, DuplicateProb: 0.3, ReorderProb: 0.3}})
		ch, cancel, err := f.SubscribeDeltas(64)
		if err != nil {
			t.Fatal(err)
		}
		defer cancel()
		for i := 0; i < 12; i++ {
			w.Mutate(addObj("x" + string(rune('a'+i))))
		}
		// Drain until the forwarder has been idle long enough to have
		// caught up with the 12 queued batches.
		var got []uint64
		for {
			select {
			case b, ok := <-ch:
				if !ok {
					return got
				}
				got = append(got, b.ToVersion)
			case <-time.After(500 * time.Millisecond):
				return got
			}
		}
	}
	first, second := run(), run()
	if len(first) == 0 || len(first) == 12 {
		t.Fatalf("schedule injected nothing interesting: %v", first)
	}
	if len(first) != len(second) {
		t.Fatalf("non-deterministic schedule: %v vs %v", first, second)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("non-deterministic schedule at %d: %v vs %v", i, first, second)
		}
	}
}

package wrapper

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"modelmed/internal/gcm"
	"modelmed/internal/term"
)

// faultyModel builds a small model with n objects of one class and a
// binary relation, for decorating with fault schedules.
func faultyModel(t testing.TB, n int) *gcm.Model {
	t.Helper()
	m := gcm.NewModel("FAULTME")
	m.AddClass(&gcm.Class{Name: "rec", Methods: []gcm.MethodSig{
		{Name: "location", Result: "string", Anchor: true},
		{Name: "value", Result: "integer", Scalar: true},
	}})
	m.AddRelation(&gcm.Relation{Name: "link", Attrs: []gcm.RelAttr{
		{Name: "a", Class: "rec"}, {Name: "b", Class: "rec"}}})
	for i := 0; i < n; i++ {
		m.AddObject(gcm.Object{
			ID:    term.Atom(fmt.Sprintf("r%d", i)),
			Class: "rec",
			Values: map[string][]term.Term{
				"location": {term.Atom("spot")},
				"value":    {term.Int(int64(i))},
			},
		})
		if i > 0 {
			m.AddTuple("link", term.Atom(fmt.Sprintf("r%d", i-1)), term.Atom(fmt.Sprintf("r%d", i)))
		}
	}
	return m
}

func newFaultyWrapper(t testing.TB, n int, cfg FaultConfig) *Faulty {
	t.Helper()
	w, err := NewInMemory(faultyModel(t, n))
	if err != nil {
		t.Fatal(err)
	}
	return NewFaulty(w, cfg)
}

func TestFaultyFailFirstThenSucceeds(t *testing.T) {
	f := newFaultyWrapper(t, 5, FaultConfig{FailFirst: 2})
	q := Query{Target: "rec"}
	for i := 0; i < 2; i++ {
		if _, err := f.QueryObjects(q); err == nil {
			t.Fatalf("call %d: expected injected fault", i)
		} else if !Transient(err) {
			t.Fatalf("call %d: fault should be transient: %v", i, err)
		}
	}
	objs, err := f.QueryObjects(q)
	if err != nil {
		t.Fatalf("call 2 should succeed: %v", err)
	}
	if len(objs) != 5 {
		t.Fatalf("got %d objects, want 5", len(objs))
	}
	// A different call site has its own schedule.
	if _, err := f.QueryTuples(Query{Target: "link"}); err == nil {
		t.Fatal("fresh call site should fail its first calls too")
	}
	st := f.FaultStats()
	if st.Errors != 3 || st.Calls != 4 {
		t.Fatalf("stats = %+v, want 3 errors over 4 calls", st)
	}
}

func TestFaultyDownIsPermanentlyTransient(t *testing.T) {
	f := newFaultyWrapper(t, 3, FaultConfig{Down: true})
	for i := 0; i < 10; i++ {
		_, err := f.QueryObjects(Query{Target: "rec"})
		if err == nil {
			t.Fatal("down source answered")
		}
		if !Transient(err) {
			t.Fatalf("down-source error should look transient (retryable): %v", err)
		}
	}
}

func TestFaultyDeterministicSchedule(t *testing.T) {
	run := func(seed int64) []bool {
		f := newFaultyWrapper(t, 4, FaultConfig{Seed: seed, ErrorProb: 0.5})
		var outcomes []bool
		for i := 0; i < 40; i++ {
			_, err := f.QueryObjects(Query{Target: "rec"})
			outcomes = append(outcomes, err == nil)
		}
		return outcomes
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced an identical 40-call schedule (suspicious)")
	}
}

func TestFaultyMaxConsecutiveBoundsErrorRuns(t *testing.T) {
	f := newFaultyWrapper(t, 4, FaultConfig{Seed: 3, ErrorProb: 1, MaxConsecutive: 2})
	fails := 0
	for i := 0; i < 12; i++ {
		if _, err := f.QueryObjects(Query{Target: "rec"}); err != nil {
			fails++
			if fails > 2 {
				t.Fatalf("call %d: more than MaxConsecutive=2 consecutive failures", i)
			}
		} else {
			fails = 0
		}
	}
}

func TestFaultyTruncationReturnsPrefix(t *testing.T) {
	f := newFaultyWrapper(t, 20, FaultConfig{Seed: 5, TruncateProb: 1})
	full, err := f.Inner().QueryObjects(Query{Target: "rec"})
	if err != nil {
		t.Fatal(err)
	}
	objs, err := f.QueryObjects(Query{Target: "rec"})
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) >= len(full) {
		t.Fatalf("truncation kept all %d objects", len(objs))
	}
	for i := range objs {
		if !objs[i].ID.Equal(full[i].ID) {
			t.Fatalf("truncated result is not a prefix at %d", i)
		}
	}
	if f.FaultStats().Truncations == 0 {
		t.Error("truncation not counted")
	}
}

func TestFaultyHangFirstDelays(t *testing.T) {
	f := newFaultyWrapper(t, 3, FaultConfig{HangFirst: 1, Hang: 50 * time.Millisecond})
	start := time.Now()
	if _, err := f.QueryObjects(Query{Target: "rec"}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("first call should hang ~50ms, took %v", d)
	}
	start = time.Now()
	if _, err := f.QueryObjects(Query{Target: "rec"}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 40*time.Millisecond {
		t.Fatalf("second call should not hang, took %v", d)
	}
	if f.FaultStats().Hangs != 1 {
		t.Errorf("hangs = %d, want 1", f.FaultStats().Hangs)
	}
}

func TestFaultyPermanentErrorsNotTransient(t *testing.T) {
	f := newFaultyWrapper(t, 3, FaultConfig{})
	_, err := f.QueryObjects(Query{Target: "rec", Selections: []Selection{{Attr: "value", Value: term.Int(1)}}})
	if err == nil {
		t.Fatal("selection without capability should be rejected")
	}
	if Transient(err) {
		t.Fatalf("capability miss must not be transient: %v", err)
	}
}

// TestInMemoryConcurrentAccess hammers one wrapper from many
// goroutines — queries, template registration, capability listing and
// stats reads — mirroring the mediator's concurrent fan-out. Run under
// -race (the Makefile race/chaos targets), this pins the wrapper-side
// locking contract.
func TestInMemoryConcurrentAccess(t *testing.T) {
	w, err := NewInMemory(faultyModel(t, 30))
	if err != nil {
		t.Fatal(err)
	}
	w.RegisterTemplate("by_value", []string{"v"}, func(m *gcm.Model, params map[string]term.Term) ([]gcm.Object, error) {
		var out []gcm.Object
		for _, o := range m.Objects {
			for _, v := range o.Values["value"] {
				if v.Equal(params["v"]) {
					out = append(out, o)
				}
			}
		}
		return out, nil
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				switch (g + i) % 5 {
				case 0:
					if _, err := w.QueryObjects(Query{Target: "rec"}); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if _, err := w.QueryTuples(Query{Target: "link"}); err != nil {
						t.Error(err)
						return
					}
				case 2:
					if _, err := w.QueryTemplate("by_value", map[string]term.Term{"v": term.Int(int64(i % 30))}); err != nil {
						t.Error(err)
						return
					}
				case 3:
					w.Capabilities()
				case 4:
					w.Stats()
				}
			}
		}(g)
	}
	// Concurrent capability append through a second template.
	wg.Add(1)
	go func() {
		defer wg.Done()
		w.RegisterTemplate("all", nil, func(m *gcm.Model, _ map[string]term.Term) ([]gcm.Object, error) {
			return m.Objects, nil
		})
	}()
	wg.Wait()
	if got := w.Stats().Queries; got == 0 {
		t.Error("no queries recorded")
	}
}

package wrapper

// Streaming source deltas: the push half of live federation. A
// Streaming wrapper emits versioned DeltaBatch values describing how
// its exported fact set changed between two consecutive data versions,
// in the same namespaced vocabulary the mediator materializes
// (src_obj/src_val/src_sub/src_tuple plus global schema facts, with
// anchor moves carried separately). The mediator's feed loop
// (mediator.StartFeeds) consumes the channel and applies each batch
// through the incremental-maintenance machinery; version sequencing is
// the contract that makes silent divergence impossible — a batch whose
// FromVersion does not extend the snapshot forces a targeted refresh.

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"modelmed/internal/datalog"
	"modelmed/internal/gcm"
	"modelmed/internal/term"
)

// Fact vocabulary of the materialized mediator object base. Source data
// is namespaced by source name, so views can address a specific source
// the way the paper writes 'NCMIR'.protein.name. The constants live
// here (not in the mediator) because streaming wrappers render their
// own deltas in this vocabulary; the mediator aliases them.
const (
	PredSrcObj   = "src_obj"   // src_obj(Source, Obj, Class)
	PredSrcVal   = "src_val"   // src_val(Source, Obj, Method, Value)
	PredSrcSub   = "src_sub"   // src_sub(Source, Sub, Super)
	PredSrcTuple = "src_tuple" // src_tuple(Source, Rel, Args...)
	PredAnchor   = "anchor"    // anchor(Source, Obj, Concept)
)

// ModelFacts renders a conceptual model's data in the namespaced
// vocabulary: global schema facts (which include any non-ground
// derivation rules the model declares), sorted subclass links, object
// instances with their method values, and relation tuples. The model's
// semantic Rules are NOT included — the mediator appends those itself.
// This is the single rendering both the mediator's pull path and the
// wrapper's streaming diff use, so the two can never disagree about
// what a source contributes.
func ModelFacts(name string, model *gcm.Model) []datalog.Rule {
	sn := term.Atom(name)
	var out []datalog.Rule
	out = append(out, model.SchemaFacts()...)
	names := make([]string, 0, len(model.Classes))
	for n := range model.Classes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, cn := range names {
		for _, sup := range model.Classes[cn].Super {
			out = append(out, datalog.Fact(PredSrcSub, sn, term.Atom(cn), term.Atom(sup)))
		}
	}
	for _, o := range model.Objects {
		out = append(out, datalog.Fact(PredSrcObj, sn, o.ID, term.Atom(o.Class)))
		methods := make([]string, 0, len(o.Values))
		for mn := range o.Values {
			methods = append(methods, mn)
		}
		sort.Strings(methods)
		for _, mn := range methods {
			for _, v := range o.Values[mn] {
				out = append(out, datalog.Fact(PredSrcVal, sn, o.ID, term.Atom(mn), v))
			}
		}
	}
	rels := make([]string, 0, len(model.Tuples))
	for rn := range model.Tuples {
		rels = append(rels, rn)
	}
	sort.Strings(rels)
	for _, rn := range rels {
		for _, tp := range model.Tuples[rn] {
			args := append([]term.Term{sn, term.Atom(rn)}, tp...)
			out = append(out, datalog.Fact(PredSrcTuple, args...))
		}
	}
	return out
}

// DeltaBatch is one versioned change emitted on a streaming feed: the
// ground facts added and removed between FromVersion and ToVersion.
// Versions chain — a consumer holding version V applies a batch only
// when FromVersion == V, detecting duplicates (ToVersion <= V) and
// gaps (FromVersion > V) by arithmetic alone. Anchor changes are
// carried separately because they update the semantic index, not just
// the fact store. Resync marks a change a delta cannot express (new
// semantic rules, a changed context summary): the consumer must
// re-pull the source instead of patching.
type DeltaBatch struct {
	Source      string
	FromVersion uint64
	ToVersion   uint64
	Adds        []datalog.Rule
	Dels        []datalog.Rule
	AnchorAdds  []datalog.Rule
	AnchorDels  []datalog.Rule
	Resync      bool
}

// Empty reports whether the batch carries no change payload.
func (b *DeltaBatch) Empty() bool {
	return !b.Resync && len(b.Adds) == 0 && len(b.Dels) == 0 &&
		len(b.AnchorAdds) == 0 && len(b.AnchorDels) == 0
}

// Streaming is the optional wrapper capability behind live federation:
// sources whose data changes push versioned delta batches instead of
// waiting to be re-pulled. SubscribeDeltas returns a channel of
// batches, a cancel function releasing the subscription, and an error
// when the wrapper cannot stream. The channel is closed when the
// subscription ends — by cancel, or by the producer dropping a
// subscriber that is too slow to keep its bounded buffer from
// overflowing (backpressure by disconnection: the consumer must
// resubscribe and resynchronize, which the mediator feed loop does
// with a targeted RefreshSource).
type Streaming interface {
	SubscribeDeltas(buffer int) (<-chan DeltaBatch, func(), error)
}

// streamState is the pre/post image Mutate diffs to build a batch.
type streamState struct {
	facts   *datalog.Store
	anchors *datalog.Store
	sig     []string // non-ground rules, in order: a change forces resync
	ctx     string   // canonical context summary: a change forces resync
}

func newStreamState(model *gcm.Model) *streamState {
	st := &streamState{facts: datalog.NewStore(), anchors: datalog.NewStore()}
	for _, r := range ModelFacts(model.Name, model) {
		if streamGround(r) {
			st.facts.Insert(r.Head.Pred, r.Head.Args)
		} else {
			st.sig = append(st.sig, r.String())
		}
	}
	for _, r := range model.Rules {
		st.sig = append(st.sig, r.String())
	}
	sn := term.Atom(model.Name)
	for concept, objs := range model.AnchorValues() {
		for _, obj := range objs {
			st.anchors.Insert(PredAnchor, []term.Term{sn, obj, term.Atom(concept)})
		}
	}
	st.ctx = contextSummary(model)
	return st
}

// contextSummary renders the model's context values canonically.
func contextSummary(model *gcm.Model) string {
	ctxs := model.ContextValues()
	keys := make([]string, 0, len(ctxs))
	for k := range ctxs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		vals := make([]string, 0, len(ctxs[k]))
		for _, v := range ctxs[k] {
			vals = append(vals, v.Key())
		}
		sort.Strings(vals)
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(strings.Join(vals, ","))
		b.WriteByte(';')
	}
	return b.String()
}

// streamGround mirrors the mediator's ground-fact test.
func streamGround(r datalog.Rule) bool {
	if len(r.Body) != 0 {
		return false
	}
	for _, a := range r.Head.Args {
		if !a.IsGround() {
			return false
		}
	}
	return true
}

func sameStreamSig(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// diffStreamStates builds the batch that takes pre to post.
func diffStreamStates(source string, from, to uint64, pre, post *streamState) DeltaBatch {
	b := DeltaBatch{Source: source, FromVersion: from, ToVersion: to}
	if !sameStreamSig(pre.sig, post.sig) || pre.ctx != post.ctx {
		// Rule or context-summary changes grow/shrink the mediated
		// program; a fact delta cannot carry them.
		b.Resync = true
		return b
	}
	pre.facts.Each(func(key string, arity int, row []term.Term) {
		if !post.facts.ContainsKey(key, row) {
			b.Dels = append(b.Dels, datalog.Fact(datalog.PredName(key), row...))
		}
	})
	post.facts.Each(func(key string, arity int, row []term.Term) {
		if !pre.facts.ContainsKey(key, row) {
			b.Adds = append(b.Adds, datalog.Fact(datalog.PredName(key), row...))
		}
	})
	pre.anchors.Each(func(key string, arity int, row []term.Term) {
		if !post.anchors.ContainsKey(key, row) {
			b.AnchorDels = append(b.AnchorDels, datalog.Fact(datalog.PredName(key), row...))
		}
	})
	post.anchors.Each(func(key string, arity int, row []term.Term) {
		if !pre.anchors.ContainsKey(key, row) {
			b.AnchorAdds = append(b.AnchorAdds, datalog.Fact(datalog.PredName(key), row...))
		}
	})
	return b
}

// SubscribeDeltas implements Streaming. Each Mutate emits one batch to
// every live subscriber; a subscriber whose buffer is full when a
// batch arrives is disconnected (channel closed) rather than allowed
// to stall the producer or silently miss a version.
func (w *InMemory) SubscribeDeltas(buffer int) (<-chan DeltaBatch, func(), error) {
	if buffer <= 0 {
		buffer = 16
	}
	w.mu.Lock()
	if w.subs == nil {
		w.subs = map[int]chan DeltaBatch{}
	}
	id := w.nextSub
	w.nextSub++
	ch := make(chan DeltaBatch, buffer)
	w.subs[id] = ch
	w.mu.Unlock()
	cancel := func() {
		w.mu.Lock()
		if c, ok := w.subs[id]; ok {
			delete(w.subs, id)
			close(c)
		}
		w.mu.Unlock()
	}
	return ch, cancel, nil
}

// emitLocked diffs the pre-mutation state against the current model
// and pushes the batch to every subscriber. Called with w.mu held,
// after the version bump; pre is non-nil only when subscribers existed
// when the mutation started.
func (w *InMemory) emitLocked(pre *streamState) {
	if pre == nil || len(w.subs) == 0 {
		return
	}
	post := newStreamState(w.model)
	// DataVersion is version+1, so the post-bump w.version is exactly
	// the DataVersion subscribers held before this mutation.
	b := diffStreamStates(w.model.Name, w.version, w.version+1, pre, post)
	for id, ch := range w.subs {
		select {
		case ch <- b:
		default:
			// Bounded-buffer overflow: drop the subscriber. The closed
			// channel is its signal to resubscribe and resync.
			delete(w.subs, id)
			close(ch)
		}
	}
}

// StreamFaults is the streaming half of a fault schedule: what Faulty
// does to the delta batches it forwards. The zero value forwards
// faithfully.
type StreamFaults struct {
	// DisconnectEvery closes the subscriber's channel after every N
	// forwarded source batches (0 = never), simulating a feed that
	// drops its connection; consumers must resubscribe.
	DisconnectEvery int
	// DuplicateProb re-delivers the previous batch before the current
	// one — a stale ToVersion the consumer must recognize and drop.
	DuplicateProb float64
	// DropProb silently swallows a batch — a version gap the consumer
	// must detect (FromVersion mismatch) and repair by refresh.
	DropProb float64
	// ReorderProb holds a batch back and delivers it after its
	// successor: the successor arrives as a gap, the held batch as
	// stale.
	ReorderProb float64
}

// StreamFaultStats counts injected streaming faults.
type StreamFaultStats struct {
	Batches     int // source batches observed
	Drops       int
	Duplicates  int
	Reorders    int
	Disconnects int
}

// StreamFaultStats returns the streaming injection counters so far.
func (f *Faulty) StreamFaultStats() StreamFaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.streamStats
}

// streamOrdinal hands out the next batch ordinal for the feed's
// deterministic schedule. The counter is persistent across
// resubscribes, so a reconnecting consumer continues the same schedule
// instead of replaying its prefix.
func (f *Faulty) streamOrdinal() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.calls["stream"]
	f.calls["stream"]++
	f.streamStats.Batches++
	return n
}

// SubscribeDeltas implements Streaming by forwarding the inner
// wrapper's feed with the configured faults injected. Every decision
// is a pure function of (Seed, batch ordinal), so a failing chaos
// schedule replays exactly.
func (f *Faulty) SubscribeDeltas(buffer int) (<-chan DeltaBatch, func(), error) {
	s, ok := f.inner.(Streaming)
	if !ok {
		return nil, nil, fmt.Errorf("wrapper %s: inner wrapper does not stream", f.inner.Name())
	}
	in, cancel, err := s.SubscribeDeltas(buffer)
	if err != nil {
		return nil, nil, err
	}
	if buffer <= 0 {
		buffer = 16
	}
	out := make(chan DeltaBatch, buffer)
	done := make(chan struct{})
	var once sync.Once
	stop := func() {
		once.Do(func() {
			cancel()
			close(done)
		})
	}
	go f.forwardStream(in, out, stop, done)
	return out, stop, nil
}

// forwardStream is the fault-injecting pump between the inner feed and
// the subscriber.
func (f *Faulty) forwardStream(in <-chan DeltaBatch, out chan<- DeltaBatch, stop func(), done <-chan struct{}) {
	defer close(out)
	send := func(b DeltaBatch) bool {
		select {
		case out <- b:
			return true
		case <-done:
			return false
		}
	}
	var prev *DeltaBatch // last batch delivered, for duplication
	var held *DeltaBatch // batch held back by a reorder
	for {
		var b DeltaBatch
		var ok bool
		select {
		case b, ok = <-in:
		case <-done:
			return
		}
		if !ok {
			// Inner feed ended: flush a held batch so a reorder at the
			// tail is a delay, not a loss.
			if held != nil {
				send(*held)
			}
			return
		}
		n := f.streamOrdinal()
		cfg := f.cfg.Stream
		r := newSiteRand(f.cfg.Seed, "stream", n)
		if cfg.DropProb > 0 && r.Float64() < cfg.DropProb {
			f.mu.Lock()
			f.streamStats.Drops++
			f.mu.Unlock()
			continue
		}
		if cfg.DuplicateProb > 0 && prev != nil && r.Float64() < cfg.DuplicateProb {
			f.mu.Lock()
			f.streamStats.Duplicates++
			f.mu.Unlock()
			if !send(*prev) {
				return
			}
		}
		if cfg.ReorderProb > 0 && held == nil && r.Float64() < cfg.ReorderProb {
			f.mu.Lock()
			f.streamStats.Reorders++
			f.mu.Unlock()
			c := b
			held = &c
			continue
		}
		if !send(b) {
			return
		}
		c := b
		prev = &c
		if held != nil {
			// The held batch lands after its successor: stale on arrival.
			if !send(*held) {
				return
			}
			held = nil
		}
		if cfg.DisconnectEvery > 0 && (n+1)%cfg.DisconnectEvery == 0 {
			f.mu.Lock()
			f.streamStats.Disconnects++
			f.mu.Unlock()
			stop()
			return
		}
	}
}

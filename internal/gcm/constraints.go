package gcm

import (
	"fmt"
	"strings"

	"modelmed/internal/datalog"
	"modelmed/internal/flogic"
	"modelmed/internal/parser"
	"modelmed/internal/term"
)

// ICClass is the distinguished inconsistency class: integrity-constraint
// violations insert failure-witness objects into it (Section 3, (IC)).
const ICClass = "ic"

// Constraint declares one integrity check on a model. Declarations
// compile to facts consumed by the generic constraint rules.
type Constraint interface {
	declarations() []datalog.Rule
}

// PartialOrder checks that relation Rel is a partial order on class
// Class — the paper's Example 2, producing wrc (reflexivity), wtc
// (transitivity) and was (antisymmetry) witnesses.
type PartialOrder struct {
	Class, Rel string
}

func (c PartialOrder) declarations() []datalog.Rule {
	return []datalog.Rule{datalog.Fact("po_constraint", term.Atom(c.Class), term.Atom(c.Rel))}
}

// KeyMethod checks that method Method is a key on class Class: no two
// distinct instances share a value.
type KeyMethod struct {
	Class, Method string
}

func (c KeyMethod) declarations() []datalog.Rule {
	return []datalog.Rule{datalog.Fact("key_method", term.Atom(c.Class), term.Atom(c.Method))}
}

// Inclusion checks that every tuple of binary relation Sub also occurs
// in Super (an inclusion dependency).
type Inclusion struct {
	Sub, Super string
}

func (c Inclusion) declarations() []datalog.Rule {
	return []datalog.Rule{datalog.Fact("incl_constraint", term.Atom(c.Sub), term.Atom(c.Super))}
}

// constraintSrc holds the generic integrity-constraint rules. They range
// over the declaration facts and insert witnesses into ic.
//
// Example 2 (partial order on C via R):
//
//	(1) wrc(C,R,X) : ic      :- X : C, not R(X,X).
//	(2) wtc(C,R,X,Z,Y) : ic  :- X,Y,Z : C, R(X,Z), R(Z,Y), not R(X,Y).
//	(3) was(C,R,X,Y) : ic    :- X : C, R(X,Y), R(Y,X), X != Y.
//
// Example 3 (cardinality on binary relations): counting per the opposite
// role's value, as in the paper's w_{!=1} and w_{>2} rules; a separate
// zero-count rule catches role fillers with no partner when Min > 0.
//
// Scalar methods: at most one value per object.
const constraintSrc = `
	% ---- Example 2: partial order ----
	wrc(C, R, X) : ic :-
		po_constraint(C, R), X : C, not relinst(R, X, X).
	wtc(C, R, X, Z, Y) : ic :-
		po_constraint(C, R), X : C, Y : C, Z : C,
		relinst(R, X, Z), relinst(R, Z, Y), not relinst(R, X, Y).
	was(C, R, X, Y) : ic :-
		po_constraint(C, R), X : C,
		relinst(R, X, Y), relinst(R, Y, X), X \= Y.

	% ---- Example 3: cardinality of the first role per second-role value ----
	w_card_max(R, VB, N) : ic :-
		card_first(R, Min, Max), Max >= 0,
		N = count{VA[VB, R]; relinst(R, VA, VB), card_first(R, Min2, Max2)},
		N > Max.
	w_card_min(R, VB, N) : ic :-
		card_first(R, Min, Max), Min > 0,
		N = count{VA[VB, R]; relinst(R, VA, VB), card_first(R, Min2, Max2)},
		N < Min.
	% Zero fillers: a second-role object with no partner at all.
	w_card_zero(R, Y) : ic :-
		card_first(R, Min, Max), Min > 0,
		relattr(R, A, CB, 1), Y : CB, not first_filled(R, Y).
	first_filled(R, Y) :- relinst(R, X, Y).

	% ---- Cardinality of the second role per first-role value ----
	w_card2_max(R, VA, N) : ic :-
		card_second(R, Min, Max), Max >= 0,
		N = count{VB[VA, R]; relinst(R, VA, VB), card_second(R, Min2, Max2)},
		N > Max.
	w_card2_min(R, VA, N) : ic :-
		card_second(R, Min, Max), Min > 0,
		N = count{VB[VA, R]; relinst(R, VA, VB), card_second(R, Min2, Max2)},
		N < Min.
	w_card2_zero(R, X) : ic :-
		card_second(R, Min, Max), Min > 0,
		relattr(R, A, CA, 0), X : CA, not second_filled(R, X).
	second_filled(R, X) :- relinst(R, X, Y).

	% ---- Scalar methods: at most one value ----
	w_scalar(C, M, X, V1, V2) : ic :-
		scalar_method(C, M), X : C,
		methodinst(X, M, V1), methodinst(X, M, V2), V1 \= V2.

	% ---- Key methods: values identify objects ----
	w_key(C, M, X, Y, V) : ic :-
		key_method(C, M), X : C, Y : C, X \= Y,
		methodinst(X, M, V), methodinst(Y, M, V).

	% ---- Inclusion dependencies on binary relations ----
	w_incl(R1, R2, X, Y) : ic :-
		incl_constraint(R1, R2), relinst(R1, X, Y), not relinst(R2, X, Y).
`

// ConstraintRules returns the generic integrity-constraint rule library.
func ConstraintRules() []datalog.Rule {
	return parser.MustParseRules(constraintSrc)
}

// Witness is one decoded inconsistency witness.
type Witness struct {
	// Kind is the witness functor, e.g. "wrc", "w_card_max".
	Kind string
	// Args are the witness arguments (constraint parameters and the
	// violating objects/values).
	Args []term.Term
}

func (w Witness) String() string {
	return fmt.Sprintf("%s%s", w.Kind, term.FormatTuple(w.Args))
}

// Witnesses extracts and decodes all members of the ic class from an
// evaluation result, sorted deterministically.
func Witnesses(res *datalog.Result) []Witness {
	rel := res.Store.Rel(datalog.PredKey("instance", 2))
	if rel == nil {
		return nil
	}
	var out []Witness
	for _, row := range rel.SortedRows() {
		if !row[1].Equal(term.Atom(ICClass)) {
			continue
		}
		w := row[0]
		switch w.Kind() {
		case term.KindCompound:
			out = append(out, Witness{Kind: w.Name(), Args: w.Args()})
		default:
			out = append(out, Witness{Kind: w.Name()})
		}
	}
	return out
}

// WitnessesOfKind filters witnesses by functor.
func WitnessesOfKind(res *datalog.Result, kind string) []Witness {
	var out []Witness
	for _, w := range Witnesses(res) {
		if w.Kind == kind {
			out = append(out, w)
		}
	}
	return out
}

// Check evaluates a model in two phases, mirroring how the paper treats
// denials as checks over a *populated* CM instance: phase 1 materializes
// the conceptual model (FL axioms + model facts + semantic rules + any
// extra rules such as relation mirrors); phase 2 runs the integrity-
// constraint library over the materialized instance as extensional data.
// The two-phase split also keeps the constraint aggregates out of any
// recursion with the closure axioms.
func Check(m *Model, extra ...datalog.Rule) (*datalog.Result, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	e := datalog.NewEngine(nil)
	if err := e.AddRules(flogic.Axioms()...); err != nil {
		return nil, err
	}
	if err := e.AddRules(m.Facts()...); err != nil {
		return nil, err
	}
	if err := e.AddRules(extra...); err != nil {
		return nil, err
	}
	res1, err := e.Run()
	if err != nil {
		return nil, err
	}
	res2, err := CheckStore(res1.Store)
	if err != nil {
		return nil, err
	}
	res2.Rounds += res1.Rounds
	res2.Firings += res1.Firings
	return res2, nil
}

// CheckStore runs the integrity-constraint library over an already
// materialized fact store (treated as extensional data) and returns the
// result, whose store contains the input facts plus any ic witnesses.
func CheckStore(store *datalog.Store) (*datalog.Result, error) {
	e := datalog.NewEngine(nil)
	if err := e.AddRules(ConstraintRules()...); err != nil {
		return nil, err
	}
	if err := AddStoreFacts(e, store); err != nil {
		return nil, err
	}
	return e.Run()
}

// AddStoreFacts loads every fact of store into the engine as extensional
// data.
func AddStoreFacts(e *datalog.Engine, store *datalog.Store) error {
	for _, key := range store.Keys() {
		name := key[:strings.LastIndexByte(key, '/')]
		for _, row := range store.Rel(key).Rows() {
			if err := e.AddFact(name, row...); err != nil {
				return err
			}
		}
	}
	return nil
}

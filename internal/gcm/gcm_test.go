package gcm

import (
	"strings"
	"testing"

	"modelmed/internal/datalog"
	"modelmed/internal/flogic"
	"modelmed/internal/term"
)

func a(s string) term.Term { return term.Atom(s) }

// neuronModel builds a small valid model used across tests.
func neuronModel() *Model {
	m := NewModel("test")
	m.AddClass(&Class{Name: "compartment"})
	m.AddClass(&Class{Name: "neuron", Methods: []MethodSig{
		{Name: "name", Result: "string", Scalar: true},
		{Name: "location", Result: "string", Anchor: true},
	}})
	m.AddClass(&Class{Name: "spiny_neuron", Super: []string{"neuron"}})
	m.AddRelation(&Relation{Name: "has", Attrs: []RelAttr{
		{Name: "whole", Class: "neuron", Card: Exactly(1)},
		{Name: "part", Class: "compartment", Card: AtMost(2)},
	}})
	return m
}

func TestValidateOK(t *testing.T) {
	m := neuronModel()
	m.AddObject(Object{ID: a("n1"), Class: "spiny_neuron",
		Values: map[string][]term.Term{"name": {term.Str("cell 1")}}})
	m.AddTuple("has", a("n1"), a("c1"))
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Model
		want  string
	}{
		{"unknown super", func() *Model {
			m := NewModel("t")
			m.AddClass(&Class{Name: "c", Super: []string{"ghost"}})
			return m
		}, "unknown superclass"},
		{"unknown result class", func() *Model {
			m := NewModel("t")
			m.AddClass(&Class{Name: "c", Methods: []MethodSig{{Name: "m", Result: "ghost"}}})
			return m
		}, "unknown result class"},
		{"duplicate method", func() *Model {
			m := NewModel("t")
			m.AddClass(&Class{Name: "c", Methods: []MethodSig{
				{Name: "m", Result: "string"}, {Name: "m", Result: "string"}}})
			return m
		}, "duplicate method"},
		{"object of unknown class", func() *Model {
			m := NewModel("t")
			m.AddObject(Object{ID: a("o"), Class: "ghost"})
			return m
		}, "unknown class"},
		{"undeclared object method", func() *Model {
			m := NewModel("t")
			m.AddClass(&Class{Name: "c"})
			m.AddObject(Object{ID: a("o"), Class: "c",
				Values: map[string][]term.Term{"m": {a("v")}}})
			return m
		}, "not declared"},
		{"tuple arity", func() *Model {
			m := NewModel("t")
			m.AddClass(&Class{Name: "c"})
			m.AddRelation(&Relation{Name: "r", Attrs: []RelAttr{
				{Name: "a", Class: "c"}, {Name: "b", Class: "c"}}})
			m.AddTuple("r", a("x"))
			return m
		}, "arity"},
		{"tuple for undeclared relation", func() *Model {
			m := NewModel("t")
			m.AddTuple("ghost", a("x"))
			return m
		}, "undeclared relation"},
		{"relation without attrs", func() *Model {
			m := NewModel("t")
			m.AddRelation(&Relation{Name: "r"})
			return m
		}, "no attributes"},
	}
	for _, c := range cases {
		err := c.build().Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
}

func TestMethodResolutionThroughSupers(t *testing.T) {
	m := neuronModel()
	m.AddObject(Object{ID: a("n1"), Class: "spiny_neuron",
		Values: map[string][]term.Term{"name": {term.Str("x")}}})
	if err := m.Validate(); err != nil {
		t.Fatalf("method inherited from neuron should validate: %v", err)
	}
}

func TestFactsCompileAndClose(t *testing.T) {
	m := neuronModel()
	m.AddObject(Object{ID: a("n1"), Class: "spiny_neuron",
		Values: map[string][]term.Term{"name": {term.Str("cell 1")}}})
	res, err := Check(m)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds("instance", a("n1"), a("neuron")) {
		t.Error("n1 : neuron should be derived via upward propagation")
	}
	if !res.Holds("method", a("spiny_neuron"), a("name"), a("string")) {
		t.Error("method signature should be inherited")
	}
}

// TestExample2Witnesses reproduces the paper's Example 2: the partial-
// order integrity constraints on a relation, with seeded violations of
// reflexivity, transitivity and antisymmetry.
func TestExample2Witnesses(t *testing.T) {
	m := NewModel("ex2")
	m.AddClass(&Class{Name: "c"})
	m.AddRelation(&Relation{Name: "po", Attrs: []RelAttr{
		{Name: "a", Class: "c"}, {Name: "b", Class: "c"}}})
	m.Constraints = append(m.Constraints, PartialOrder{Class: "c", Rel: "po"})
	for _, x := range []string{"x", "y", "z"} {
		m.AddObject(Object{ID: a(x), Class: "c"})
	}
	// Seed: reflexive only on x; po(x,y), po(y,z) but no po(x,z)
	// (transitivity violation); po(y,x) as well (antisymmetry violation
	// with po(x,y)).
	m.AddTuple("po", a("x"), a("x"))
	m.AddTuple("po", a("x"), a("y"))
	m.AddTuple("po", a("y"), a("z"))
	m.AddTuple("po", a("y"), a("x"))
	res, err := Check(m)
	if err != nil {
		t.Fatal(err)
	}
	wrc := WitnessesOfKind(res, "wrc")
	if len(wrc) != 2 { // y and z lack reflexive edges
		t.Errorf("wrc witnesses = %v, want 2", wrc)
	}
	wtc := WitnessesOfKind(res, "wtc")
	if len(wtc) == 0 {
		t.Error("expected transitivity witnesses")
	}
	was := WitnessesOfKind(res, "was")
	if len(was) != 2 { // (x,y) and (y,x)
		t.Errorf("was witnesses = %v, want 2", was)
	}
}

// TestExample2CleanPartialOrder verifies a true partial order yields no
// witnesses ("R is a partial order on C iff (1-3) do not insert a
// failure witness into ic").
func TestExample2CleanPartialOrder(t *testing.T) {
	m := NewModel("ex2clean")
	m.AddClass(&Class{Name: "c"})
	m.AddRelation(&Relation{Name: "po", Attrs: []RelAttr{
		{Name: "a", Class: "c"}, {Name: "b", Class: "c"}}})
	m.Constraints = append(m.Constraints, PartialOrder{Class: "c", Rel: "po"})
	for _, x := range []string{"x", "y", "z"} {
		m.AddObject(Object{ID: a(x), Class: "c"})
	}
	// x <= y <= z with full reflexive-transitive closure.
	pairs := [][2]string{{"x", "x"}, {"y", "y"}, {"z", "z"}, {"x", "y"}, {"y", "z"}, {"x", "z"}}
	for _, p := range pairs {
		m.AddTuple("po", a(p[0]), a(p[1]))
	}
	res, err := Check(m)
	if err != nil {
		t.Fatal(err)
	}
	if ws := Witnesses(res); len(ws) != 0 {
		t.Errorf("clean partial order produced witnesses: %v", ws)
	}
}

// TestExample2OnSubclass applies the partial-order check to the class
// hierarchy itself (the paper: assign "::" to R and "class" to C),
// using mirror rules to expose subclass as a reified relation.
func TestExample2OnSubclass(t *testing.T) {
	m := NewModel("meta")
	m.AddClass(&Class{Name: "a"})
	m.AddClass(&Class{Name: "b", Super: []string{"a"}})
	m.Constraints = append(m.Constraints, PartialOrder{Class: flogic.MetaClass, Rel: "subclass"})
	extra := flogic.MirrorRules("subclass", 2)
	res, err := Check(m, extra...)
	if err != nil {
		t.Fatal(err)
	}
	// The FL axioms close :: reflexively and transitively, and the
	// hierarchy is acyclic, so the check passes... except that the
	// metaclass `class` itself has no reflexive edge unless declared.
	for _, w := range Witnesses(res) {
		if w.Kind == "was" {
			t.Errorf("antisymmetry witness on acyclic hierarchy: %v", w)
		}
	}
}

func TestSubclassCycleDetectedByAntisymmetry(t *testing.T) {
	m := NewModel("cyc")
	m.AddClass(&Class{Name: "a", Super: []string{"b"}})
	m.AddClass(&Class{Name: "b", Super: []string{"a"}})
	m.Constraints = append(m.Constraints, PartialOrder{Class: flogic.MetaClass, Rel: "subclass"})
	res, err := Check(m, flogic.MirrorRules("subclass", 2)...)
	if err != nil {
		t.Fatal(err)
	}
	was := WitnessesOfKind(res, "was")
	if len(was) == 0 {
		t.Error("cycle a::b::a should produce antisymmetry witnesses")
	}
}

// TestExample3Cardinality reproduces the paper's Example 3: for
// has(neuron, axon), a neuron has at most 2 axons and an axon is
// contained in exactly one neuron.
func TestExample3Cardinality(t *testing.T) {
	m := NewModel("ex3")
	m.AddClass(&Class{Name: "neuron"})
	m.AddClass(&Class{Name: "axon"})
	m.AddRelation(&Relation{Name: "has", Attrs: []RelAttr{
		{Name: "a", Class: "neuron", Card: Exactly(1)}, // per axon: exactly one neuron
		{Name: "b", Class: "axon", Card: AtMost(2)},    // per neuron: at most two axons
	}})
	for _, n := range []string{"n1", "n2"} {
		m.AddObject(Object{ID: a(n), Class: "neuron"})
	}
	for _, x := range []string{"x1", "x2", "x3", "x4", "x5"} {
		m.AddObject(Object{ID: a(x), Class: "axon"})
	}
	// n1 has 3 axons (violates <=2); x1 is shared by n1 and n2 (violates
	// exactly-1); x5 belongs to no neuron (violates exactly-1 at zero).
	m.AddTuple("has", a("n1"), a("x1"))
	m.AddTuple("has", a("n1"), a("x2"))
	m.AddTuple("has", a("n1"), a("x3"))
	m.AddTuple("has", a("n2"), a("x1"))
	m.AddTuple("has", a("n2"), a("x4"))
	res, err := Check(m)
	if err != nil {
		t.Fatal(err)
	}
	maxW := WitnessesOfKind(res, "w_card2_max")
	if len(maxW) != 1 || !maxW[0].Args[1].Equal(a("n1")) {
		t.Errorf("w_card2_max = %v, want one witness for n1", maxW)
	}
	firstMax := WitnessesOfKind(res, "w_card_max")
	if len(firstMax) != 1 || !firstMax[0].Args[1].Equal(a("x1")) {
		t.Errorf("w_card_max = %v, want one witness for x1 (two neurons)", firstMax)
	}
	zero := WitnessesOfKind(res, "w_card_zero")
	if len(zero) != 1 || !zero[0].Args[1].Equal(a("x5")) {
		t.Errorf("w_card_zero = %v, want one witness for x5", zero)
	}
}

func TestExample3CleanCardinality(t *testing.T) {
	m := NewModel("ex3clean")
	m.AddClass(&Class{Name: "neuron"})
	m.AddClass(&Class{Name: "axon"})
	m.AddRelation(&Relation{Name: "has", Attrs: []RelAttr{
		{Name: "a", Class: "neuron", Card: Exactly(1)},
		{Name: "b", Class: "axon", Card: AtMost(2)},
	}})
	m.AddObject(Object{ID: a("n1"), Class: "neuron"})
	for _, x := range []string{"x1", "x2"} {
		m.AddObject(Object{ID: a(x), Class: "axon"})
	}
	m.AddTuple("has", a("n1"), a("x1"))
	m.AddTuple("has", a("n1"), a("x2"))
	res, err := Check(m)
	if err != nil {
		t.Fatal(err)
	}
	if ws := Witnesses(res); len(ws) != 0 {
		t.Errorf("conforming instance produced witnesses: %v", ws)
	}
}

func TestScalarMethodConstraint(t *testing.T) {
	m := neuronModel()
	m.AddObject(Object{ID: a("n1"), Class: "neuron",
		Values: map[string][]term.Term{"name": {term.Str("a"), term.Str("b")}}})
	res, err := Check(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(WitnessesOfKind(res, "w_scalar")) == 0 {
		t.Error("two values on a scalar method should produce a witness")
	}
}

func TestKeyMethodConstraint(t *testing.T) {
	m := neuronModel()
	m.Constraints = append(m.Constraints, KeyMethod{Class: "neuron", Method: "name"})
	m.AddObject(Object{ID: a("n1"), Class: "neuron",
		Values: map[string][]term.Term{"name": {term.Str("same")}}})
	m.AddObject(Object{ID: a("n2"), Class: "neuron",
		Values: map[string][]term.Term{"name": {term.Str("same")}}})
	res, err := Check(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(WitnessesOfKind(res, "w_key")) == 0 {
		t.Error("key violation should produce a witness")
	}
}

func TestInclusionConstraint(t *testing.T) {
	m := NewModel("incl")
	m.AddClass(&Class{Name: "c"})
	m.AddRelation(&Relation{Name: "r1", Attrs: []RelAttr{
		{Name: "a", Class: "c"}, {Name: "b", Class: "c"}}})
	m.AddRelation(&Relation{Name: "r2", Attrs: []RelAttr{
		{Name: "a", Class: "c"}, {Name: "b", Class: "c"}}})
	m.Constraints = append(m.Constraints, Inclusion{Sub: "r1", Super: "r2"})
	m.AddTuple("r1", a("x"), a("y"))
	m.AddTuple("r1", a("u"), a("v"))
	m.AddTuple("r2", a("x"), a("y"))
	res, err := Check(m)
	if err != nil {
		t.Fatal(err)
	}
	ws := WitnessesOfKind(res, "w_incl")
	if len(ws) != 1 || !ws[0].Args[2].Equal(a("u")) {
		t.Errorf("w_incl = %v, want one witness for (u,v)", ws)
	}
}

func TestAnchorValues(t *testing.T) {
	m := neuronModel()
	m.AddObject(Object{ID: a("n1"), Class: "neuron",
		Values: map[string][]term.Term{"location": {a("purkinje_cell")}}})
	m.AddObject(Object{ID: a("n2"), Class: "neuron",
		Values: map[string][]term.Term{"location": {a("purkinje_cell")}, "name": {term.Str("z")}}})
	anchors := m.AnchorValues()
	if len(anchors["purkinje_cell"]) != 2 {
		t.Errorf("anchors = %v", anchors)
	}
	if len(anchors) != 1 {
		t.Errorf("non-anchor method leaked into anchors: %v", anchors)
	}
}

func TestCardinalityHelpers(t *testing.T) {
	if Exactly(3) != (Cardinality{3, 3}) || AtMost(2) != (Cardinality{0, 2}) {
		t.Error("cardinality constructors wrong")
	}
	if Any.Max >= 0 {
		t.Error("Any must be unbounded")
	}
}

func TestWitnessString(t *testing.T) {
	w := Witness{Kind: "wrc", Args: []term.Term{a("c"), a("r"), a("x")}}
	if got := w.String(); got != "wrc(c,r,x)" {
		t.Errorf("String = %q", got)
	}
}

func TestCheckRunsSemanticRules(t *testing.T) {
	m := neuronModel()
	m.AddObject(Object{ID: a("n1"), Class: "neuron",
		Values: map[string][]term.Term{"name": {term.Str("cell")}}})
	m.Rules = append(m.Rules, datalog.NewRule(
		datalog.Lit("named", term.Var("X")),
		datalog.Lit("methodinst", term.Var("X"), a("name"), term.Var("V"))))
	res, err := Check(m)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds("named", a("n1")) {
		t.Error("semantic rule should derive named(n1)")
	}
}

func TestValueTypeChecking(t *testing.T) {
	build := func(result string, v term.Term) *Model {
		m := NewModel("typed")
		m.AddClass(&Class{Name: "c", Methods: []MethodSig{{Name: "m", Result: result}}})
		m.AddObject(Object{ID: a("o"), Class: "c", Values: map[string][]term.Term{"m": {v}}})
		return m
	}
	good := []struct {
		result string
		v      term.Term
	}{
		{"string", term.Str("x")},
		{"string", a("x")}, // atoms are admissible string values
		{"integer", term.Int(3)},
		{"float", term.Float(1.5)},
		{"float", term.Int(2)}, // ints are numeric
		{"number", term.Int(2)},
		{"any", term.Comp("f", a("x"))},
	}
	for _, c := range good {
		if err := build(c.result, c.v).Validate(); err != nil {
			t.Errorf("%s value %v should validate: %v", c.result, c.v, err)
		}
	}
	bad := []struct {
		result string
		v      term.Term
	}{
		{"string", term.Int(3)},
		{"integer", term.Str("3")},
		{"integer", term.Float(3)},
		{"float", a("x")},
	}
	for _, c := range bad {
		if err := build(c.result, c.v).Validate(); err == nil {
			t.Errorf("%s value %v should be rejected", c.result, c.v)
		}
	}
}

func TestIsBuiltinClass(t *testing.T) {
	for _, c := range []string{"string", "integer", "float", "number", "any"} {
		if !IsBuiltinClass(c) {
			t.Errorf("%s should be builtin", c)
		}
	}
	if IsBuiltinClass("neuron") {
		t.Error("neuron is not builtin")
	}
}

func TestCheckStoreDirect(t *testing.T) {
	m := neuronModel()
	m.AddObject(Object{ID: a("n1"), Class: "neuron",
		Values: map[string][]term.Term{"name": {term.Str("x"), term.Str("y")}}})
	res1, err := Check(m)
	if err != nil {
		t.Fatal(err)
	}
	// Re-checking the materialized store reproduces the witnesses.
	res2, err := CheckStore(res1.Store)
	if err != nil {
		t.Fatal(err)
	}
	if len(WitnessesOfKind(res2, "w_scalar")) == 0 {
		t.Error("CheckStore should rediscover the scalar violation")
	}
}

func TestDerivedAttribute(t *testing.T) {
	m := NewModel("derived")
	m.AddClass(&Class{Name: "measurement", Methods: []MethodSig{
		{Name: "density", Result: "float", Scalar: true},
		{Name: "density_class", Result: "string",
			Derivation: `
				methodinst(O, density_class, high) :- methodinst(O, density, D), D >= 2.0.
				methodinst(O, density_class, low) :- methodinst(O, density, D), D < 2.0.
			`},
	}})
	m.AddObject(Object{ID: a("m1"), Class: "measurement",
		Values: map[string][]term.Term{"density": {term.Float(3.1)}}})
	m.AddObject(Object{ID: a("m2"), Class: "measurement",
		Values: map[string][]term.Term{"density": {term.Float(0.4)}}})
	res, err := Check(m)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds("methodinst", a("m1"), a("density_class"), a("high")) {
		t.Error("m1 should derive high")
	}
	if !res.Holds("methodinst", a("m2"), a("density_class"), a("low")) {
		t.Error("m2 should derive low")
	}
}

func TestDerivedAttributeValidation(t *testing.T) {
	// Bad rule text.
	m := NewModel("bad1")
	m.AddClass(&Class{Name: "c", Methods: []MethodSig{
		{Name: "d", Result: "string", Derivation: "methodinst(O, d"}}})
	if err := m.Validate(); err == nil {
		t.Error("unparseable derivation should fail validation")
	}
	// Wrong head.
	m2 := NewModel("bad2")
	m2.AddClass(&Class{Name: "c", Methods: []MethodSig{
		{Name: "d", Result: "string", Derivation: "other(O, V) :- src(O, V)."}}})
	if err := m2.Validate(); err == nil {
		t.Error("derivation without the right methodinst head should fail")
	}
	// Stored values on a derived method.
	m3 := NewModel("bad3")
	m3.AddClass(&Class{Name: "c", Methods: []MethodSig{
		{Name: "d", Result: "string",
			Derivation: "methodinst(O, d, x) :- instance(O, c)."}}})
	m3.AddObject(Object{ID: a("o"), Class: "c",
		Values: map[string][]term.Term{"d": {a("x")}}})
	if err := m3.Validate(); err == nil {
		t.Error("stored values on a derived method should fail")
	}
}

// Package gcm implements the Generic Conceptual Model of Section 3:
// classes with method signatures, n-ary relations with attribute roles,
// object instances, and the logic-rule extension mechanism — including
// the integrity-constraint library of Examples 2 (partial orders) and 3
// (cardinality constraints), whose violations insert failure witnesses
// into the distinguished inconsistency class `ic`.
package gcm

import (
	"fmt"
	"sort"

	"modelmed/internal/datalog"
	"modelmed/internal/flogic"
	"modelmed/internal/parser"
	"modelmed/internal/term"
)

// Builtin value classes every model may reference without declaring.
var builtinClasses = map[string]bool{
	"string": true, "integer": true, "float": true, "number": true, "any": true,
}

// IsBuiltinClass reports whether name is a builtin value class.
func IsBuiltinClass(name string) bool { return builtinClasses[name] }

// MethodSig describes one method (attribute/slot) of a class.
type MethodSig struct {
	// Name of the method.
	Name string
	// Result is the class of the method's values.
	Result string
	// Scalar marks single-valued methods (at most one value per object).
	Scalar bool
	// Anchor marks the method as a semantic-anchor attribute: its values
	// are concepts of the mediator's domain map (Section 2, "anchor and
	// context attributes").
	Anchor bool
	// Context marks the method as a context attribute: its values
	// situate the data (organism, experimental condition, ...) and are
	// summarized into the mediator's semantic index to refine source
	// selection.
	Context bool
	// Derivation, when non-empty, makes this a derived attribute
	// "computed on demand at the mediator" (Section 2, footnote 4): rule
	// text whose head is methodinst(O, <name>, V). Derived methods carry
	// no stored values.
	Derivation string
}

// Class is a class (entity type) of a conceptual model.
type Class struct {
	Name    string
	Super   []string // direct superclasses
	Methods []MethodSig
}

// Method returns the signature of the named method, if declared directly
// on the class.
func (c *Class) Method(name string) (MethodSig, bool) {
	for _, m := range c.Methods {
		if m.Name == name {
			return m, true
		}
	}
	return MethodSig{}, false
}

// Cardinality bounds the number of role fillers; Max < 0 means
// unbounded.
type Cardinality struct {
	Min, Max int
}

// Any is the unconstrained cardinality. The zero value Cardinality{} is
// also treated as unconstrained.
var Any = Cardinality{Min: 0, Max: -1}

// Constrained reports whether the cardinality actually restricts the
// number of fillers.
func (c Cardinality) Constrained() bool {
	return !(c == Cardinality{}) && !(c.Min <= 0 && c.Max < 0)
}

// Exactly returns the cardinality [n,n].
func Exactly(n int) Cardinality { return Cardinality{Min: n, Max: n} }

// AtMost returns the cardinality [0,n].
func AtMost(n int) Cardinality { return Cardinality{Min: 0, Max: n} }

// RelAttr is one attribute (association role) of a relation.
type RelAttr struct {
	Name  string
	Class string
	// Card bounds, for binary relations, how many fillers of this role
	// may pair with one filler of the other role (the paper's Example 3:
	// card_A(N):=(N=1), card_B(N):=(N<=2)).
	Card Cardinality
}

// Relation is an n-ary relation schema (Table 1's REL form).
type Relation struct {
	Name  string
	Attrs []RelAttr
}

// Object is an instance of a class with its method values.
type Object struct {
	ID     term.Term
	Class  string
	Values map[string][]term.Term
}

// Model is a conceptual model CM(S): the schema, semantic rules, and
// instance data a wrapped source exports to the mediator.
type Model struct {
	Name      string
	Classes   map[string]*Class
	Relations map[string]*Relation
	// Rules are the source's semantic rules, already in GCM form.
	Rules []datalog.Rule
	// Constraints declare integrity checks to compile in (see
	// constraints.go).
	Constraints []Constraint
	Objects     []Object
	// Tuples holds relation instances, keyed by relation name.
	Tuples map[string][][]term.Term
}

// NewModel returns an empty model.
func NewModel(name string) *Model {
	return &Model{
		Name:      name,
		Classes:   make(map[string]*Class),
		Relations: make(map[string]*Relation),
		Tuples:    make(map[string][][]term.Term),
	}
}

// AddClass declares a class; it replaces any previous declaration of the
// same name.
func (m *Model) AddClass(c *Class) { m.Classes[c.Name] = c }

// AddRelation declares a relation schema.
func (m *Model) AddRelation(r *Relation) { m.Relations[r.Name] = r }

// AddObject adds an object instance.
func (m *Model) AddObject(o Object) { m.Objects = append(m.Objects, o) }

// AddTuple adds a relation instance.
func (m *Model) AddTuple(rel string, args ...term.Term) {
	m.Tuples[rel] = append(m.Tuples[rel], args)
}

// checkValueType validates a method value against a builtin result
// class. Values of declared (non-builtin) classes and of "any" are not
// checked here: object-class membership is derived by the rule engine.
func checkValueType(result string, v term.Term) error {
	switch result {
	case "string":
		if v.Kind() != term.KindString && v.Kind() != term.KindAtom {
			return fmt.Errorf("value %s is not a string", v)
		}
	case "integer":
		if v.Kind() != term.KindInt {
			return fmt.Errorf("value %s is not an integer", v)
		}
	case "float", "number":
		if _, ok := v.Numeric(); !ok {
			return fmt.Errorf("value %s is not numeric", v)
		}
	}
	return nil
}

// classKnown reports whether name is declared or builtin.
func (m *Model) classKnown(name string) bool {
	if builtinClasses[name] {
		return true
	}
	_, ok := m.Classes[name]
	return ok
}

// methodOf resolves a method signature on class name, walking direct and
// transitive superclasses.
func (m *Model) methodOf(class, method string) (MethodSig, bool) {
	seen := map[string]bool{}
	var walk func(string) (MethodSig, bool)
	walk = func(cn string) (MethodSig, bool) {
		if seen[cn] {
			return MethodSig{}, false
		}
		seen[cn] = true
		c, ok := m.Classes[cn]
		if !ok {
			return MethodSig{}, false
		}
		if sig, ok := c.Method(method); ok {
			return sig, true
		}
		for _, s := range c.Super {
			if sig, ok := walk(s); ok {
				return sig, true
			}
		}
		return MethodSig{}, false
	}
	return walk(class)
}

// Validate checks referential integrity of the model: superclasses and
// result classes resolve, objects belong to declared classes and use
// declared methods, tuples match their relation's arity.
func (m *Model) Validate() error {
	for _, c := range m.Classes {
		for _, s := range c.Super {
			if !m.classKnown(s) {
				return fmt.Errorf("gcm: model %s: class %s: unknown superclass %s", m.Name, c.Name, s)
			}
		}
		seen := map[string]bool{}
		for _, sig := range c.Methods {
			if seen[sig.Name] {
				return fmt.Errorf("gcm: model %s: class %s: duplicate method %s", m.Name, c.Name, sig.Name)
			}
			seen[sig.Name] = true
			if !m.classKnown(sig.Result) {
				return fmt.Errorf("gcm: model %s: class %s: method %s: unknown result class %s", m.Name, c.Name, sig.Name, sig.Result)
			}
			if sig.Derivation != "" {
				rules, err := parser.ParseRules(sig.Derivation)
				if err != nil {
					return fmt.Errorf("gcm: model %s: class %s: derived method %s: %w", m.Name, c.Name, sig.Name, err)
				}
				okHead := false
				for _, r := range rules {
					if r.Head.Pred == flogic.PredMethodInst && len(r.Head.Args) == 3 &&
						r.Head.Args[1].Equal(term.Atom(sig.Name)) {
						okHead = true
					}
				}
				if !okHead {
					return fmt.Errorf("gcm: model %s: class %s: derived method %s: derivation must define methodinst(O, %s, V)",
						m.Name, c.Name, sig.Name, sig.Name)
				}
			}
		}
	}
	for _, r := range m.Relations {
		if len(r.Attrs) == 0 {
			return fmt.Errorf("gcm: model %s: relation %s has no attributes", m.Name, r.Name)
		}
		for _, a := range r.Attrs {
			if !m.classKnown(a.Class) {
				return fmt.Errorf("gcm: model %s: relation %s: attribute %s: unknown class %s", m.Name, r.Name, a.Name, a.Class)
			}
		}
	}
	for _, o := range m.Objects {
		if _, ok := m.Classes[o.Class]; !ok {
			return fmt.Errorf("gcm: model %s: object %s: unknown class %s", m.Name, o.ID, o.Class)
		}
		for method, vals := range o.Values {
			sig, ok := m.methodOf(o.Class, method)
			if !ok {
				return fmt.Errorf("gcm: model %s: object %s: method %s not declared on class %s or its superclasses", m.Name, o.ID, method, o.Class)
			}
			if sig.Derivation != "" {
				return fmt.Errorf("gcm: model %s: object %s: derived method %s must not carry stored values", m.Name, o.ID, method)
			}
			for _, v := range vals {
				if err := checkValueType(sig.Result, v); err != nil {
					return fmt.Errorf("gcm: model %s: object %s: method %s: %w", m.Name, o.ID, method, err)
				}
			}
		}
	}
	for rel, tuples := range m.Tuples {
		r, ok := m.Relations[rel]
		if !ok {
			return fmt.Errorf("gcm: model %s: tuples for undeclared relation %s", m.Name, rel)
		}
		for _, tp := range tuples {
			if len(tp) != len(r.Attrs) {
				return fmt.Errorf("gcm: model %s: relation %s: tuple %s has arity %d, want %d", m.Name, rel, term.FormatTuple(tp), len(tp), len(r.Attrs))
			}
		}
	}
	return nil
}

// SchemaFacts compiles only the schema level of the model: class
// hierarchy, method signatures, relation schemas, cardinality and
// constraint declarations — no objects or tuples.
func (m *Model) SchemaFacts() []datalog.Rule {
	var out []datalog.Rule
	classNames := make([]string, 0, len(m.Classes))
	for n := range m.Classes {
		classNames = append(classNames, n)
	}
	sort.Strings(classNames)
	for _, cn := range classNames {
		c := m.Classes[cn]
		out = append(out, flogic.Instance(term.Atom(c.Name), term.Atom(flogic.MetaClass)))
		for _, s := range c.Super {
			out = append(out, flogic.Subclass(term.Atom(c.Name), term.Atom(s)))
		}
		for _, sig := range c.Methods {
			out = append(out, flogic.Method(term.Atom(c.Name), term.Atom(sig.Name), term.Atom(sig.Result)))
			if sig.Scalar {
				out = append(out, datalog.Fact("scalar_method", term.Atom(c.Name), term.Atom(sig.Name)))
			}
			if sig.Anchor {
				out = append(out, datalog.Fact("anchor_method", term.Atom(c.Name), term.Atom(sig.Name)))
			}
			if sig.Context {
				out = append(out, datalog.Fact("context_method", term.Atom(c.Name), term.Atom(sig.Name)))
			}
			if sig.Derivation != "" {
				// Validated in Validate; MustParse here would panic on
				// bad text that slipped through, which is a bug.
				rules, err := parser.ParseRules(sig.Derivation)
				if err == nil {
					out = append(out, rules...)
				}
			}
		}
	}
	relNames := make([]string, 0, len(m.Relations))
	for n := range m.Relations {
		relNames = append(relNames, n)
	}
	sort.Strings(relNames)
	for _, rn := range relNames {
		r := m.Relations[rn]
		attrs := make([]string, len(r.Attrs))
		classes := make([]string, len(r.Attrs))
		for i, a := range r.Attrs {
			attrs[i] = a.Name
			classes[i] = a.Class
		}
		out = append(out, flogic.RelationSchema(r.Name, attrs, classes)...)
		if len(r.Attrs) == 2 {
			for i, a := range r.Attrs {
				if !a.Card.Constrained() {
					continue
				}
				max := int64(a.Card.Max)
				pred := "card_first"
				if i == 1 {
					pred = "card_second"
				}
				out = append(out, datalog.Fact(pred, term.Atom(r.Name),
					term.Int(int64(a.Card.Min)), term.Int(max)))
			}
		}
	}
	for _, c := range m.Constraints {
		out = append(out, c.declarations()...)
	}
	return out
}

// Facts compiles the model into GCM facts: the schema facts plus
// objects, tuples and the model's semantic rules. Together with
// flogic.Axioms() and ConstraintRules() this is a runnable program.
func (m *Model) Facts() []datalog.Rule {
	out := m.SchemaFacts()
	for _, o := range m.Objects {
		out = append(out, flogic.Instance(o.ID, term.Atom(o.Class)))
		methods := make([]string, 0, len(o.Values))
		for mn := range o.Values {
			methods = append(methods, mn)
		}
		sort.Strings(methods)
		for _, mn := range methods {
			for _, val := range o.Values[mn] {
				out = append(out, flogic.MethodInst(o.ID, term.Atom(mn), val))
			}
		}
	}
	relNames2 := make([]string, 0, len(m.Tuples))
	for rn := range m.Tuples {
		relNames2 = append(relNames2, rn)
	}
	sort.Strings(relNames2)
	for _, rn := range relNames2 {
		for _, tp := range m.Tuples[rn] {
			out = append(out, flogic.RelationInst(rn, tp...)...)
		}
	}
	out = append(out, m.Rules...)
	return out
}

// ContextValues returns, per context-marked method, the distinct values
// occurring in the model's objects — the source-level context summary a
// wrapper reports at registration.
func (m *Model) ContextValues() map[string][]term.Term {
	seen := map[string]map[string]bool{}
	out := map[string][]term.Term{}
	for _, o := range m.Objects {
		for method, vals := range o.Values {
			sig, ok := m.methodOf(o.Class, method)
			if !ok || !sig.Context {
				continue
			}
			if seen[method] == nil {
				seen[method] = map[string]bool{}
			}
			for _, v := range vals {
				k := v.Key()
				if !seen[method][k] {
					seen[method][k] = true
					out[method] = append(out[method], v)
				}
			}
		}
	}
	for method := range out {
		vs := out[method]
		term.SortTerms(vs)
		out[method] = vs
	}
	return out
}

// AnchorValues returns, per domain-map concept, the object IDs anchored
// at it: every value of an Anchor-marked method. This is the data the
// wrapper contributes to the mediator's semantic index (Section 4,
// "Registering Source Data").
func (m *Model) AnchorValues() map[string][]term.Term {
	anchors := map[string][]term.Term{}
	for _, o := range m.Objects {
		for method, vals := range o.Values {
			sig, ok := m.methodOf(o.Class, method)
			if !ok || !sig.Anchor {
				continue
			}
			for _, v := range vals {
				concept := v.Name()
				anchors[concept] = append(anchors[concept], o.ID)
			}
		}
	}
	return anchors
}

package cluster

import (
	"testing"

	"modelmed/internal/datalog"
	"modelmed/internal/mediator"
	"modelmed/internal/parser"
)

// standardViews parses the repo's registered view set, the rule graph
// the classifier walks in production.
func standardViews(t *testing.T) []datalog.Rule {
	t.Helper()
	var out []datalog.Rule
	for _, src := range []string{mediator.ProteinDistributionView, mediator.NeurotransmissionView} {
		rules, err := parser.ParseRules(src)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, rules...)
	}
	return out
}

func classify(t *testing.T, q string, views []datalog.Rule) Decomposition {
	t.Helper()
	body, aux, err := parser.ParseQuery(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	return Classify(body, aux, views)
}

func TestClassifyModes(t *testing.T) {
	views := standardViews(t)
	cases := []struct {
		q         string
		mode      Mode
		sources   string
		noPartial bool
	}{
		// Replicated knowledge only: no shard involvement at all.
		{q: `dm_isa_star(C, neuron)`, mode: ModeReplicated},
		{q: `dm_down(has_a, purkinje_cell, C), dm_isa_star(C, dendrite)`, mode: ModeReplicated},
		// Aggregates over replicated facts are still replicated.
		{q: `N = count{C; dm_isa_star(C, neuron)}`, mode: ModeReplicated},

		// All sourceful accesses pinned to one ground source.
		{q: `src_obj('SENSELAB', N, neurotransmission), src_val('SENSELAB', N, organism, "rat")`,
			mode: ModeSources, sources: "SENSELAB"},
		{q: `src_obj('SENSELAB', N, neurotransmission), ` +
			`src_val('SENSELAB', N, organism, "rat"), ` +
			`src_val('SENSELAB', N, transmitting_compartment, parallel_fiber), ` +
			`anchor('SENSELAB', N, C)`,
			mode: ModeSources, sources: "SENSELAB"},
		// Two ground sources: the router needs exactly these two fact
		// sets (one shard -> proxy, two shards -> restricted gather).
		{q: `src_val('SYNAPSE', O, neurotransmitter, V), src_val('NCMIR', P, protein_name, V)`,
			mode: ModeSources, sources: "NCMIR,SYNAPSE"},

		// One shared source variable: every answer tuple has a single-
		// source derivation, so the per-shard union is exact.
		{q: `src_obj(S, O, C)`, mode: ModeScatter},
		{q: `anchor(S, O, C), dm_isa_star(C, dendrite)`, mode: ModeScatter},
		{q: `anchor(S, O, C), src_val(S, O, organism, Org)`, mode: ModeScatter},
		// A single reference to a single-source view is scatter too.
		{q: `neurotransmission(O, Org, TN, TC, RN, RC, NT)`, mode: ModeScatter},

		// Distinct source groups join: derivations can span shards.
		{q: `anchor(S1, O1, C), anchor(S2, O2, C)`, mode: ModeGather},
		{q: `anchor(S, O, C), src_val('NCMIR', P, protein_name, V)`, mode: ModeGather},
		// Two references to a single-source view may bind different
		// sources, so they are distinct groups.
		{q: `neurotransmission(O, Org, TN, TC, RN, RC, NT), neurotransmission(O2, Org, TN2, TC2, RN2, RC2, NT)`,
			mode: ModeGather},
		// The GCM bridge erases the source argument; joins through it
		// cross shards invisibly.
		{q: `instance(O, C)`, mode: ModeGather},
		// Aggregation over a partitioned relation: gather, and a missing
		// shard would change the value — refuse partial answers.
		{q: `protein_distribution(Root, P, Org, T, N)`, mode: ModeGather, noPartial: true},
		{q: `N = count{O; anchor(S, O, C)}`, mode: ModeGather, noPartial: true},
		// Negation over source facts: a shard missing the fact would
		// wrongly satisfy it.
		{q: `anchor(S, O, C), not src_val(S, O, organism, "rat")`, mode: ModeGather, noPartial: true},
	}
	for _, tc := range cases {
		d := classify(t, tc.q, views)
		if d.Mode != tc.mode {
			t.Errorf("%s:\n  mode = %v (%s), want %v", tc.q, d.Mode, d.Reason, tc.mode)
			continue
		}
		if tc.sources != "" {
			got := ""
			for i, s := range d.Sources {
				if i > 0 {
					got += ","
				}
				got += s
			}
			if got != tc.sources {
				t.Errorf("%s: sources = %q, want %q", tc.q, got, tc.sources)
			}
		}
		if d.NoPartial != tc.noPartial {
			t.Errorf("%s: NoPartial = %v, want %v (%s)", tc.q, d.NoPartial, tc.noPartial, d.Reason)
		}
	}
}

// classifyAux classifies a query body plus explicit auxiliary rules —
// the shape Classify sees when the parser folds negated conjunctions,
// and the same rule-graph mechanism views go through.
func classifyAux(t *testing.T, q, auxSrc string, views []datalog.Rule) Decomposition {
	t.Helper()
	body, aux, err := parser.ParseQuery(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	if auxSrc != "" {
		rules, err := parser.ParseRules(auxSrc)
		if err != nil {
			t.Fatalf("parse aux %q: %v", auxSrc, err)
		}
		aux = append(aux, rules...)
	}
	return Classify(body, aux, views)
}

func TestClassifyAuxRules(t *testing.T) {
	views := standardViews(t)
	// An aux rule pinned to one ground source keeps the query pinned.
	d := classifyAux(t, `q(O)`, `q(O) :- src_obj('SYNAPSE', O, C).`, views)
	if d.Mode != ModeSources || len(d.Sources) != 1 || d.Sources[0] != "SYNAPSE" {
		t.Fatalf("aux ground rule: got %v %v (%s)", d.Mode, d.Sources, d.Reason)
	}
	// Aux rules over different ground sources referenced together: the
	// query needs exactly those two fact sets (proxy if one shard owns
	// both, restricted gather otherwise).
	d = classifyAux(t, `a(O), b(O)`,
		`a(O) :- src_obj('SYNAPSE', O, C). b(O) :- src_obj('NCMIR', O, C).`, views)
	if d.Mode != ModeSources || len(d.Sources) != 2 {
		t.Fatalf("cross-source aux join: got %v %v (%s)", d.Mode, d.Sources, d.Reason)
	}
	// An anonymous single-source aux rule referenced once: scatter.
	d = classifyAux(t, `q(S, O)`,
		`q(S, O) :- anchor(S, O, C), src_val(S, O, organism, Org).`, views)
	if d.Mode != ModeScatter {
		t.Fatalf("anonymous aux: got %v (%s)", d.Mode, d.Reason)
	}
	// A negated conjunction over source facts (the parser folds it into
	// an aux rule itself): gather, no partials.
	d = classify(t, `src_obj(S, O, D), not (src_val(S, O, organism, "rat"), anchor(S, O, C))`, views)
	if d.Mode != ModeGather || !d.NoPartial {
		t.Fatalf("negated sourceful conjunction: got %v noPartial=%v (%s)", d.Mode, d.NoPartial, d.Reason)
	}
	// Unknown predicates degrade conservatively to gather (the replica
	// rejects them later with ErrUnknownPredicate).
	d = classify(t, `mystery(X)`, views)
	if d.Mode != ModeGather {
		t.Fatalf("unknown pred: got %v (%s)", d.Mode, d.Reason)
	}
	// Recursive aux rules degrade conservatively to gather.
	d = classifyAux(t, `r(a, B)`,
		`r(X, Y) :- src_val('SYNAPSE', X, links_to, Y). r(X, Z) :- r(X, Y), r(Y, Z).`, views)
	if d.Mode != ModeGather {
		t.Fatalf("recursive aux: got %v (%s)", d.Mode, d.Reason)
	}
}

func TestParseShardSpec(t *testing.T) {
	got, err := ParseShardSpec("http://a:1, b=http://b:2/,c = http://c:3")
	if err != nil {
		t.Fatal(err)
	}
	want := []ShardConfig{
		{ID: "shard0", URL: "http://a:1"},
		{ID: "b", URL: "http://b:2"},
		{ID: "c", URL: "http://c:3"},
	}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("entry %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	for _, bad := range []string{"", "ftp://x", "a=http://x,a=http://y", "=http://x"} {
		if _, err := ParseShardSpec(bad); err == nil {
			t.Errorf("spec %q: expected error", bad)
		}
	}
}

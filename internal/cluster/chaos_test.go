package cluster

// Failure semantics: a downed shard must yield flagged partial
// answers that are sound (a subset of the full answer, exactly the
// surviving shards' contribution), a hard 5xx where the query cannot
// be answered without it, and never a silently wrong answer. After
// the cooldown the next request is the half-open probe and service
// recovers without operator action.

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"modelmed/internal/serve"
)

func TestChaosDownedShard(t *testing.T) {
	c := newTestCluster(t, 2026, 14, 18, 10, twoShardAssign(), nil, RouterConfig{
		Cooldown: 50 * time.Millisecond,
	})
	full := newReference(t, 2026, 14, 18, 10, nil)
	// A reference holding only shard0's sources: the exact answer the
	// degraded cluster should produce for scatter queries.
	survivors := newReference(t, 2026, 14, 18, 10, nil, "SYNAPSE", "SENSELAB")

	scatter := serve.QueryRequest{Query: `anchor(S, O, C), dm_isa_star(C, dendrite)`, Vars: []string{"S", "O", "C"}}
	proxyDown := serve.QueryRequest{Query: `src_obj('NCMIR', O, C)`, Vars: []string{"O", "C"}}
	proxyUp := serve.QueryRequest{Query: `src_obj('SYNAPSE', O, C)`, Vars: []string{"O", "C"}}
	gatherAgg := serve.QueryRequest{Query: `protein_distribution(Root, P, Org, T, N)`, Vars: []string{"Root", "P", "Org", "T", "N"}}
	gatherJoin := serve.QueryRequest{Query: `src_obj('SYNAPSE', O, C), src_obj('NCMIR', P, D)`, Vars: []string{"O", "C", "P", "D"}}

	// Healthy baseline, and pin the full-cluster answers.
	for _, req := range []serve.QueryRequest{scatter, proxyDown, gatherAgg} {
		resp, status := routerQuery(t, c.base(), req)
		if status != http.StatusOK || resp.Partial {
			t.Fatalf("healthy %s: status %d partial %v", req.Query, status, resp.Partial)
		}
	}

	// Take shard1 (NCMIR) down. Use NoCache so every probe hits shards.
	c.shards[1].down.Store(true)
	scatter.NoCache = true
	proxyDown.NoCache = true
	proxyUp.NoCache = true
	gatherAgg.NoCache = true
	gatherJoin.NoCache = true
	// The gather facts cache still holds NCMIR's dump from the healthy
	// baseline; that is by design (consistent as-of last contact). Drop
	// it so this test exercises the cold degraded path.
	c.router.facts.dropAll()

	// First scatter trips the breaker on shard1 but still answers.
	resp, status := routerQuery(t, c.base(), scatter)
	if status != http.StatusOK {
		t.Fatalf("degraded scatter: status %d", status)
	}
	if !resp.Partial {
		t.Fatal("degraded scatter: answer not flagged partial")
	}
	got := rowSet(resp.Rows)
	fullRows := refRowSet(t, full, scatter.Query, scatter.Vars)
	wantSurvivors := refRowSet(t, survivors, scatter.Query, scatter.Vars)
	if strings.Join(got, "\n") != strings.Join(wantSurvivors, "\n") {
		t.Errorf("degraded scatter: got %d rows, want the %d surviving-shard rows", len(got), len(wantSurvivors))
	}
	fullSet := map[string]bool{}
	for _, r := range fullRows {
		fullSet[r] = true
	}
	for _, r := range got {
		if !fullSet[r] {
			t.Errorf("degraded scatter produced a row absent from the full answer: %q", r)
		}
	}
	var downReported bool
	for _, sr := range resp.Shards {
		if sr.ID == "shard1" && sr.Status != "ok" {
			downReported = true
		}
	}
	if !downReported {
		t.Errorf("degraded scatter: shard1 outage not reported in shard reports: %+v", resp.Shards)
	}

	// Proxy to the downed shard: hard failure, never empty-200. The
	// first hit may race the breaker state (502 from the live probe);
	// once open it is 503.
	if _, status := routerQuery(t, c.base(), proxyDown); status < 500 {
		t.Fatalf("proxy to downed shard: status %d, want 5xx", status)
	}
	// Proxy to the healthy shard still works.
	if resp, status := routerQuery(t, c.base(), proxyUp); status != http.StatusOK || resp.Partial {
		t.Fatalf("proxy to healthy shard while peer down: status %d partial %v", status, resp.Partial)
	}
	// Aggregation over the partitioned relation: a partial input would
	// produce a wrong value, so the router must refuse.
	if _, status := routerQuery(t, c.base(), gatherAgg); status != http.StatusServiceUnavailable {
		t.Fatalf("aggregate gather with shard down: status %d, want 503", status)
	}
	// A non-aggregate cross-shard join degrades to a flagged partial.
	resp, status = routerQuery(t, c.base(), gatherJoin)
	if status != http.StatusOK {
		t.Fatalf("join gather with shard down: status %d", status)
	}
	if !resp.Partial {
		t.Fatal("join gather with shard down: not flagged partial")
	}
	if len(resp.Rows) != 0 {
		t.Errorf("join gather missing one side: want 0 rows, got %d", len(resp.Rows))
	}

	// A delta for the downed shard's source must be rejected, not
	// dropped on the floor.
	d := serve.DeltaRequest{Source: "NCMIR", Adds: []string{`src_obj('NCMIR', chaos_1, delta_probe)`}}
	var dr DeltaResponse
	if status := postJSON(t, http.DefaultClient, c.base()+"/v1/delta", d, &dr, nil); status < 500 {
		t.Fatalf("delta to downed shard: status %d, want 5xx", status)
	}

	// Recovery: bring the shard back, wait out the cooldown; the next
	// request is the half-open probe and full service resumes.
	c.shards[1].down.Store(false)
	time.Sleep(80 * time.Millisecond)
	resp, status = routerQuery(t, c.base(), scatter)
	if status != http.StatusOK {
		t.Fatalf("recovered scatter: status %d", status)
	}
	if resp.Partial {
		t.Fatal("recovered scatter still partial after cooldown")
	}
	if got := rowSet(resp.Rows); strings.Join(got, "\n") != strings.Join(fullRows, "\n") {
		t.Errorf("recovered scatter: %d rows, want the full %d", len(got), len(fullRows))
	}
	if resp, status := routerQuery(t, c.base(), gatherAgg); status != http.StatusOK || resp.Partial {
		t.Fatalf("recovered aggregate: status %d partial %v", status, resp.Partial)
	}
	if status := postJSON(t, http.DefaultClient, c.base()+"/v1/delta", d, &dr, nil); status != http.StatusOK {
		t.Fatalf("delta after recovery: status %d", status)
	}
}

// TestClientCancelDoesNotTripBreaker: a request that dies on its own
// deadline mid-shard-call is the client's fault, not the shard's — it
// must not open the breaker and black the shard out for everyone
// else.
func TestClientCancelDoesNotTripBreaker(t *testing.T) {
	c := newTestCluster(t, 2026, 14, 18, 10, twoShardAssign(), nil, RouterConfig{
		Cooldown: 10 * time.Minute, // a wrongly tripped breaker would stay visible
	})

	// Slow the shards so the router's 1ms request deadline expires
	// while the shard calls are in flight — exactly what a client
	// disconnect mid-fan-out looks like from the router's side.
	for _, sh := range c.shards {
		sh.slowMs.Store(30)
	}
	impatient := serve.QueryRequest{Query: `anchor(S, O, C)`, Vars: []string{"S", "O", "C"},
		NoCache: true, TimeoutMs: 1}
	for i := 0; i < 5; i++ {
		if _, status := routerQuery(t, c.base(), impatient); status == http.StatusOK {
			t.Fatal("1ms deadline did not expire against 30ms-slow shards")
		}
	}
	for _, sh := range c.shards {
		sh.slowMs.Store(0)
	}

	patient := serve.QueryRequest{Query: `anchor(S, O, C)`, Vars: []string{"S", "O", "C"}, NoCache: true}
	resp, status := routerQuery(t, c.base(), patient)
	if status != http.StatusOK {
		t.Fatalf("query after impatient clients: status %d", status)
	}
	if resp.Partial {
		t.Fatalf("impatient clients tripped the breaker: partial answer, shards %+v", resp.Shards)
	}
}

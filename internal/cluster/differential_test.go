package cluster

// The cluster correctness property: for any query in the mediated
// vocabulary and any interleaving of source deltas, the router's
// answer over a partitioned cluster is set-equal to a single mediator
// holding every source. Checked over the Section 5 workload and seeded
// random query/delta sequences against 2-shard and 4-shard
// partitions, with the same deltas applied to the router (HTTP) and
// the reference (ApplySourceDelta) mid-stream.

import (
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"

	"modelmed/internal/datalog"
	"modelmed/internal/mediator"
	"modelmed/internal/parser"
	"modelmed/internal/serve"
	"modelmed/internal/sources"
	"modelmed/internal/wrapper"
)

// extraWrapper builds the deterministic synthetic fourth source for
// 4-shard runs. Each call returns an independent, identical wrapper.
func extraWrapper(t testing.TB) *wrapper.InMemory {
	t.Helper()
	model, err := sources.SyntheticSource("EXTRA00", 7, 12, []string{"ca1", "dentate_gyrus"})
	if err != nil {
		t.Fatal(err)
	}
	w, err := wrapper.NewInMemory(model)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// sec5Workload is the Section 5 serving mix (benchrunner's), at the
// view's real arity, plus per-mode coverage: proxy, scatter, gather,
// restricted gather, replicated, negation.
func sec5Workload() []serve.QueryRequest {
	return []serve.QueryRequest{
		// Unplanned on purpose: the planner pushdown path re-pulls
		// wrappers and (identically on single node and cluster) does not
		// see stated deltas, so the differential reference is the engine
		// path.
		{Query: `src_obj('SENSELAB', N, neurotransmission), ` +
			`src_val('SENSELAB', N, organism, "rat"), ` +
			`src_val('SENSELAB', N, transmitting_compartment, parallel_fiber), ` +
			`anchor('SENSELAB', N, C)`, Vars: []string{"N", "C"}},
		{Query: `protein_distribution(Root, P, Org, T, N)`, Vars: []string{"Root", "P", "Org", "T", "N"}},
		{Query: `src_obj('SYNAPSE', O, C)`, Vars: []string{"O", "C"}},
		{Query: `anchor(S, O, C), dm_isa_star(C, dendrite)`, Vars: []string{"S", "O", "C"}},
	}
}

// queryPool is the differential template pool; every decomposition
// mode is represented. %s slots are filled from the run's source list.
func queryPool(srcs []string) []serve.QueryRequest {
	reqs := sec5Workload()
	reqs = append(reqs,
		serve.QueryRequest{Query: `dm_isa_star(C, neuron)`, Vars: []string{"C"}},
		serve.QueryRequest{Query: `dm_down(has_a, purkinje_cell, C)`, Vars: []string{"C"}},
		serve.QueryRequest{Query: `anchor(S, O, C)`, Vars: []string{"S", "O", "C"}},
		serve.QueryRequest{Query: `anchor(S, O, C), src_val(S, O, organism, Org)`, Vars: []string{"O", "Org"}},
		serve.QueryRequest{Query: `neurotransmission(O, Org, TN, TC, RN, RC, NT)`, Vars: []string{"O", "NT"}},
		serve.QueryRequest{Query: `anchor(S, O, C), not src_val(S, O, organism, "rat")`, Vars: []string{"S", "O"}},
		serve.QueryRequest{Query: `N = count{O; anchor(S, O, C)}`, Vars: []string{"N"}},
	)
	for _, s := range srcs {
		reqs = append(reqs, serve.QueryRequest{
			Query: fmt.Sprintf(`src_obj('%s', O, C)`, s), Vars: []string{"O", "C"}})
	}
	// A cross-shard ground join (restricted gather on partitioned
	// clusters).
	if len(srcs) >= 2 {
		reqs = append(reqs, serve.QueryRequest{
			Query: fmt.Sprintf(`src_obj('%s', O, C), src_obj('%s', P, D)`, srcs[0], srcs[1]),
			Vars:  []string{"O", "C", "P", "D"}})
	}
	return reqs
}

// deltaLog tracks facts added per source so later deltas can delete
// them again.
type deltaLog struct {
	added map[string][]string // source -> fact strings still present
	n     int
}

// nextDelta builds a random delta: mostly adds (a fresh object with a
// value and sometimes an anchor), sometimes deletions of previously
// added facts.
func (dl *deltaLog) nextDelta(r *rand.Rand, srcs []string) serve.DeltaRequest {
	src := srcs[r.Intn(len(srcs))]
	if dl.added == nil {
		dl.added = map[string][]string{}
	}
	if have := dl.added[src]; len(have) > 0 && r.Intn(3) == 0 {
		// Delete one previously added fact.
		i := r.Intn(len(have))
		fact := have[i]
		dl.added[src] = append(have[:i], have[i+1:]...)
		return serve.DeltaRequest{Source: src, Dels: []string{fact}}
	}
	dl.n++
	id := fmt.Sprintf("dx_%d", dl.n)
	adds := []string{
		fmt.Sprintf(`src_obj('%s', %s, delta_probe)`, src, id),
		fmt.Sprintf(`src_val('%s', %s, organism, "rat")`, src, id),
	}
	if r.Intn(2) == 0 {
		adds = append(adds, fmt.Sprintf(`anchor('%s', %s, purkinje_cell)`, src, id))
	}
	dl.added[src] = append(dl.added[src], adds...)
	return serve.DeltaRequest{Source: src, Adds: adds}
}

// applyReferenceDelta applies the same delta to the monolithic
// reference via the incremental API the shard uses.
func applyReferenceDelta(t testing.TB, ref *mediator.Mediator, d serve.DeltaRequest) {
	t.Helper()
	parse := func(lines []string) []datalog.Rule {
		var out []datalog.Rule
		for _, l := range lines {
			rules, err := parser.ParseRules(l + ".")
			if err != nil {
				t.Fatalf("parse delta fact %q: %v", l, err)
			}
			out = append(out, rules...)
		}
		return out
	}
	if _, err := ref.ApplySourceDelta(d.Source, parse(d.Adds), parse(d.Dels)); err != nil {
		t.Fatalf("reference delta: %v", err)
	}
}

func checkEqual(t *testing.T, label string, resp QueryResponse, ref *mediator.Mediator, q string, vars []string) {
	t.Helper()
	if resp.Partial {
		t.Fatalf("%s: partial answer on a healthy cluster", label)
	}
	got := rowSet(resp.Rows)
	want := refRowSet(t, ref, q, vars)
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("%s:\n  query %s\n  router %d rows, reference %d rows (mode %s)",
			label, q, len(got), len(want), resp.Mode)
	}
}

// runDifferential drives one partitioned cluster against the
// reference: first the full workload, then seqs seeded random
// query/delta sequences with deltas interleaved mid-stream, then the
// workload again over the mutated federation.
func runDifferential(t *testing.T, assign [][]string, extras map[string]wrapper.Wrapper, extraRef []wrapper.Wrapper, seqs int) {
	c := newTestCluster(t, 2026, 14, 18, 10, assign, extras, RouterConfig{})
	ref := newReference(t, 2026, 14, 18, 10, extraRef)
	var srcs []string
	for _, names := range assign {
		srcs = append(srcs, names...)
	}
	pool := queryPool(srcs)

	for i, req := range pool {
		resp, status := routerQuery(t, c.base(), req)
		if status != http.StatusOK {
			t.Fatalf("workload %d (%s): status %d", i, req.Query, status)
		}
		checkEqual(t, fmt.Sprintf("workload %d", i), resp, ref, req.Query, req.Vars)
	}

	dl := &deltaLog{}
	for seq := 0; seq < seqs; seq++ {
		r := rand.New(rand.NewSource(int64(1000*seq) + 17))
		ops := 4 + r.Intn(4)
		for op := 0; op < ops; op++ {
			if r.Intn(3) == 0 {
				d := dl.nextDelta(r, srcs)
				var dr DeltaResponse
				if status := postJSON(t, http.DefaultClient, c.base()+"/v1/delta", d, &dr, nil); status != http.StatusOK {
					t.Fatalf("seq %d op %d: delta to %s: status %d", seq, op, d.Source, status)
				}
				applyReferenceDelta(t, ref, d)
				continue
			}
			req := pool[r.Intn(len(pool))]
			resp, status := routerQuery(t, c.base(), req)
			if status != http.StatusOK {
				t.Fatalf("seq %d op %d (%s): status %d", seq, op, req.Query, status)
			}
			checkEqual(t, fmt.Sprintf("seq %d op %d", seq, op), resp, ref, req.Query, req.Vars)
		}
	}

	for i, req := range pool {
		resp, status := routerQuery(t, c.base(), req)
		if status != http.StatusOK {
			t.Fatalf("final workload %d: status %d", i, status)
		}
		checkEqual(t, fmt.Sprintf("final workload %d", i), resp, ref, req.Query, req.Vars)
	}
}

func TestDifferentialTwoShards(t *testing.T) {
	runDifferential(t, twoShardAssign(), nil, nil, 25)
}

func TestDifferentialFourShards(t *testing.T) {
	extra := map[string]wrapper.Wrapper{"EXTRA00": extraWrapper(t)}
	assign := [][]string{{"SYNAPSE"}, {"NCMIR"}, {"SENSELAB"}, {"EXTRA00"}}
	runDifferential(t, assign, extra, []wrapper.Wrapper{extraWrapper(t)}, 25)
}

// TestDifferentialConcurrent hammers the router with the mixed
// workload from many goroutines while deltas land concurrently; every
// 200 answer must be non-partial and a sound subset check is implied
// by the race detector plus the final set-equality sweep.
func TestDifferentialConcurrent(t *testing.T) {
	c := newTestCluster(t, 2026, 10, 12, 8, twoShardAssign(), nil, RouterConfig{})
	ref := newReference(t, 2026, 10, 12, 8, nil)
	srcs := []string{"SYNAPSE", "SENSELAB", "NCMIR"}
	pool := queryPool(srcs)

	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 15; i++ {
				req := pool[r.Intn(len(pool))]
				resp, status := routerQuery(t, c.base(), req)
				if status != http.StatusOK {
					errCh <- fmt.Errorf("worker %d: %s: status %d", g, req.Query, status)
					return
				}
				if resp.Partial {
					errCh <- fmt.Errorf("worker %d: partial on healthy cluster", g)
					return
				}
			}
		}(g)
	}
	// One delta writer interleaved with the readers.
	wg.Add(1)
	deltas := make([]serve.DeltaRequest, 0, 10)
	go func() {
		defer wg.Done()
		dl := &deltaLog{}
		r := rand.New(rand.NewSource(99))
		for i := 0; i < 10; i++ {
			d := dl.nextDelta(r, srcs)
			var dr DeltaResponse
			if status := postJSON(t, http.DefaultClient, c.base()+"/v1/delta", d, &dr, nil); status != http.StatusOK {
				errCh <- fmt.Errorf("delta writer: status %d", status)
				return
			}
			deltas = append(deltas, d)
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// Catch the reference up and verify convergence.
	for _, d := range deltas {
		applyReferenceDelta(t, ref, d)
	}
	for i, req := range pool {
		resp, status := routerQuery(t, c.base(), req)
		if status != http.StatusOK {
			t.Fatalf("converged workload %d: status %d", i, status)
		}
		checkEqual(t, fmt.Sprintf("converged workload %d", i), resp, ref, req.Query, req.Vars)
	}
}

package cluster

// The router: the cluster's front door, speaking the same /v1/query,
// /v1/delta and /v1/sync API as a single medd. Each query is parsed,
// classified (decompose.go) and executed in the cheapest sound mode;
// each delta is forwarded to the one shard owning its source and its
// cache effect applied precisely. The router holds a *replica*
// mediator carrying only the static knowledge (domain map, views, no
// sources): it answers replicated-only queries locally and evaluates
// gathered fact dumps.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"modelmed/internal/mediator"
	"modelmed/internal/obs"
	"modelmed/internal/parser"
	"modelmed/internal/serve"
	"modelmed/internal/term"
)

// RouterConfig configures a Router.
type RouterConfig struct {
	// Shards is the cluster topology (required).
	Shards []ShardConfig
	// Replica is a mediator holding the replicated static knowledge —
	// same domain map and views as every shard, no registered sources
	// (required).
	Replica *mediator.Mediator
	// RequestTimeout bounds each client request end to end, shard calls
	// included (default 30s; a request's timeout_ms can shorten it).
	RequestTimeout time.Duration
	// CacheEntries bounds the answer cache (default 1024).
	CacheEntries int
	// DisableCache turns the answer cache off.
	DisableCache bool
	// RateLimits is the front-door per-key token bucket set
	// (KEY -> requests/second), as in the single-node service.
	RateLimits map[string]float64
	// FailThreshold / Cooldown / Client tune shard health tracking; see
	// ManagerConfig.
	FailThreshold int
	Cooldown      time.Duration
	Client        *http.Client
	// Log receives request lines (default: discard into log.Default?
	// no — nil disables request logging).
	Log *log.Logger
}

func (c RouterConfig) requestTimeout() time.Duration {
	if c.RequestTimeout <= 0 {
		return 30 * time.Second
	}
	return c.RequestTimeout
}

// Router is the HTTP front end over a Manager.
type Router struct {
	cfg   RouterConfig
	man   *Manager
	rep   *mediator.Mediator
	rl    *serve.RateLimiter
	ctr   *obs.Counters
	log   *log.Logger
	mux   *http.ServeMux
	cache *answerCache
	facts *factsCache
}

// NewRouter builds the router. Call Discover (usually at daemon boot)
// to learn the source assignment.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if cfg.Replica == nil {
		return nil, fmt.Errorf("cluster: router needs a replica mediator")
	}
	man, err := NewManager(ManagerConfig{
		Shards:        cfg.Shards,
		FailThreshold: cfg.FailThreshold,
		Cooldown:      cfg.Cooldown,
		Client:        cfg.Client,
	})
	if err != nil {
		return nil, err
	}
	rt := &Router{
		cfg:   cfg,
		man:   man,
		rep:   cfg.Replica,
		rl:    serve.NewRateLimiter(cfg.RateLimits),
		ctr:   obs.NewCounters(),
		log:   cfg.Log,
		cache: newAnswerCache(cfg.CacheEntries),
		facts: newFactsCache(),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", rt.handleQuery)
	mux.HandleFunc("/v1/delta", rt.handleDelta)
	mux.HandleFunc("/v1/sync", rt.handleSync)
	mux.HandleFunc("/healthz", rt.handleHealthz)
	mux.HandleFunc("/metrics", rt.handleMetrics)
	rt.mux = mux
	return rt, nil
}

// Manager exposes the shard manager (ops/test hook).
func (rt *Router) Manager() *Manager { return rt.man }

// Counters exposes the router's counter set.
func (rt *Router) Counters() *obs.Counters { return rt.ctr }

// CacheSize returns the number of cached answers (test/ops hook).
func (rt *Router) CacheSize() int { return rt.cache.size() }

// Discover probes the shards and builds the source assignment.
func (rt *Router) Discover(ctx context.Context) error { return rt.man.Discover(ctx) }

// Handler returns the HTTP handler (front-door rate limiter wraps the
// mux; health and metrics stay reachable regardless).
func (rt *Router) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rt.ctr.Add("router.requests", 1)
		if strings.HasPrefix(r.URL.Path, "/v1/") && !rt.rl.Allow(r.Header.Get("X-API-Key")) {
			rt.ctr.Add("router.rate_limited", 1)
			w.Header().Set("Retry-After", "1")
			rt.writeError(w, http.StatusTooManyRequests, errors.New("rate limit exceeded"))
			return
		}
		rt.mux.ServeHTTP(w, r)
	})
}

// QueryResponse is the router's POST /v1/query reply: the single-node
// shape plus the execution mode, the partial flag, and the per-shard
// reports.
type QueryResponse struct {
	Vars   []string   `json:"vars"`
	Rows   [][]string `json:"rows"`
	Count  int        `json:"count"`
	Cached bool       `json:"cached"`
	// Partial marks an answer computed without one or more down shards:
	// every row is a true answer (the query class is monotone) but rows
	// owned by the missing shards may be absent. Never set silently —
	// Shards names the culprits.
	Partial bool `json:"partial,omitempty"`
	// Mode is the decomposition class: replicated, proxy, scatter or
	// gather.
	Mode   string        `json:"mode"`
	Shards []ShardReport `json:"shards,omitempty"`
}

// DeltaResponse is the router's POST /v1/delta reply: the owning
// shard's report plus the router-level cache effect.
type DeltaResponse struct {
	serve.DeltaResponse
	Shard              string `json:"shard"`
	RouterCacheDropped int    `json:"router_cache_dropped"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (rt *Router) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (rt *Router) writeError(w http.ResponseWriter, status int, err error) {
	rt.writeJSON(w, status, errorResponse{Error: err.Error()})
}

func (rt *Router) logf(format string, args ...any) {
	if rt.log != nil {
		rt.log.Printf(format, args...)
	}
}

// --- query ---

func (rt *Router) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if r.Method != http.MethodPost {
		rt.writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	var req serve.QueryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		rt.writeError(w, http.StatusBadRequest, fmt.Errorf("decode: %w", err))
		return
	}
	body, aux, err := parser.ParseQuery(req.Query)
	if err != nil {
		rt.ctr.Add("router.query_errors", 1)
		rt.writeError(w, http.StatusBadRequest, err)
		return
	}
	timeout := rt.cfg.requestTimeout()
	if req.TimeoutMs > 0 {
		if d := time.Duration(req.TimeoutMs) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	dec := Classify(body, aux, rt.rep.ViewRules())
	key := serve.CacheKey(body, aux, req.Vars, req.Planned)
	useCache := !rt.cfg.DisableCache && !req.NoCache && !req.Trace
	var gen uint64
	if useCache {
		cached, g, ok := rt.cache.get(key)
		if ok {
			cached.Cached = true
			rt.ctr.Add("router.cache_hits", 1)
			rt.writeJSON(w, http.StatusOK, &cached)
			rt.logf("method=POST path=/v1/query mode=%s status=200 dur=%s rows=%d cache=hit", cached.Mode, time.Since(start), cached.Count)
			return
		}
		gen = g
		rt.ctr.Add("router.cache_misses", 1)
	}

	apiKey := r.Header.Get("X-API-Key")
	var resp *QueryResponse
	var status int
	switch dec.Mode {
	case ModeReplicated:
		resp, status, err = rt.replicatedQuery(ctx, &req)
	case ModeSources:
		resp, status, err = rt.sourcesQuery(ctx, apiKey, &req, &dec)
	case ModeScatter:
		resp, status, err = rt.scatterQuery(ctx, apiKey, &req)
	default:
		resp, status, err = rt.gatherQuery(ctx, apiKey, &req, &dec, rt.man.Shards())
	}
	if err != nil {
		rt.ctr.Add("router.query_errors", 1)
		rt.writeError(w, status, err)
		rt.logf("method=POST path=/v1/query mode=%s status=%d dur=%s err=%v", dec.Mode, status, time.Since(start), err)
		return
	}
	rt.ctr.Add("router.queries", 1)
	rt.ctr.Add("router."+dec.Mode.String(), 1)
	if resp.Partial {
		rt.ctr.Add("router.partial_answers", 1)
	} else if useCache {
		deps := dec.Sources
		global := dec.Mode == ModeScatter || dec.Mode == ModeGather
		rt.cache.put(key, *resp, deps, global, gen)
	}
	rt.writeJSON(w, http.StatusOK, resp)
	rt.logf("method=POST path=/v1/query mode=%s status=200 dur=%s rows=%d cache=miss partial=%v",
		resp.Mode, time.Since(start), resp.Count, resp.Partial)
}

// replicatedQuery answers from the router's own static knowledge —
// zero shard calls.
func (rt *Router) replicatedQuery(ctx context.Context, req *serve.QueryRequest) (*QueryResponse, int, error) {
	ans, err := rt.rep.QueryOverFacts(ctx, nil, req.Query, req.Vars)
	if err != nil {
		if errors.Is(err, mediator.ErrUnknownPredicate) {
			return nil, http.StatusBadRequest, err
		}
		return nil, http.StatusInternalServerError, err
	}
	rows := renderRows(ans.Rows)
	return &QueryResponse{Vars: ans.Vars, Rows: rows, Count: len(rows), Mode: ModeReplicated.String()}, 0, nil
}

// sourcesQuery handles queries pinned to ground sources: proxy when
// one shard owns them all, restricted gather when they span shards.
// Sources no shard owns contribute no facts anywhere, matching what an
// unregistered source yields on a single mediator.
func (rt *Router) sourcesQuery(ctx context.Context, apiKey string, req *serve.QueryRequest, dec *Decomposition) (*QueryResponse, int, error) {
	owners := map[*Shard]bool{}
	for _, src := range dec.Sources {
		if sh, ok := rt.man.Owner(src); ok {
			owners[sh] = true
		}
	}
	switch len(owners) {
	case 0:
		// No owned facts: evaluate over static knowledge alone.
		resp, status, err := rt.replicatedQuery(ctx, req)
		if resp != nil {
			resp.Mode = "proxy"
		}
		return resp, status, err
	case 1:
		for sh := range owners {
			return rt.proxyQuery(ctx, apiKey, req, sh)
		}
	}
	shards := make([]*Shard, 0, len(owners))
	for sh := range owners {
		shards = append(shards, sh)
	}
	sort.Slice(shards, func(i, j int) bool { return shards[i].ID < shards[j].ID })
	return rt.gatherQuery(ctx, apiKey, req, dec, shards)
}

// proxyQuery forwards the request verbatim to one shard.
func (rt *Router) proxyQuery(ctx context.Context, apiKey string, req *serve.QueryRequest, sh *Shard) (*QueryResponse, int, error) {
	if !rt.man.Available(sh) {
		return nil, http.StatusServiceUnavailable, fmt.Errorf("shard %s is down: %s", sh.ID, rt.man.Report(sh).Error)
	}
	sr, err := rt.man.Query(ctx, sh, apiKey, req)
	if err != nil {
		if ShardDown(err) {
			if shardFault(ctx, err) {
				rt.man.MarkFailure(sh, err)
			}
			return nil, http.StatusBadGateway, fmt.Errorf("shard %s: %w", sh.ID, err)
		}
		var se *StatusError
		errors.As(err, &se)
		return nil, se.Status, fmt.Errorf("shard %s: %s", sh.ID, se.Message)
	}
	rt.man.MarkSuccess(sh)
	rep := rt.man.Report(sh)
	rep.Rows = len(sr.Rows)
	return &QueryResponse{
		Vars: sr.Vars, Rows: sr.Rows, Count: len(sr.Rows),
		Mode: "proxy", Shards: []ShardReport{rep},
	}, 0, nil
}

// scatterQuery fans the request out to every shard and unions the
// answers. Down shards yield a flagged partial answer; a deterministic
// client rejection (4xx) from any shard is relayed as-is.
func (rt *Router) scatterQuery(ctx context.Context, apiKey string, req *serve.QueryRequest) (*QueryResponse, int, error) {
	shards := rt.man.Shards()
	answers := make([]*serve.QueryResponse, len(shards))
	errs := make([]error, len(shards))
	skipped := make([]bool, len(shards))
	var wg sync.WaitGroup
	for i, sh := range shards {
		if !rt.man.Available(sh) {
			skipped[i] = true
			continue
		}
		wg.Add(1)
		go func(i int, sh *Shard) {
			defer wg.Done()
			answers[i], errs[i] = rt.man.Query(ctx, sh, apiKey, req)
		}(i, sh)
	}
	wg.Wait()

	resp := &QueryResponse{Mode: ModeScatter.String()}
	seen := map[string]bool{}
	var okCount int
	for i, sh := range shards {
		rep := rt.man.Report(sh)
		switch {
		case skipped[i]:
			resp.Partial = true
		case errs[i] != nil:
			if !ShardDown(errs[i]) {
				var se *StatusError
				errors.As(errs[i], &se)
				return nil, se.Status, fmt.Errorf("shard %s: %s", sh.ID, se.Message)
			}
			if shardFault(ctx, errs[i]) {
				rt.man.MarkFailure(sh, errs[i])
			}
			rep = rt.man.Report(sh)
			rep.Status = "failed"
			rep.Error = errs[i].Error()
			resp.Partial = true
		default:
			rt.man.MarkSuccess(sh)
			rep = rt.man.Report(sh)
			okCount++
			a := answers[i]
			if resp.Vars == nil {
				resp.Vars = a.Vars
			}
			rep.Rows = len(a.Rows)
			for _, row := range a.Rows {
				k := strings.Join(row, "\x00")
				if !seen[k] {
					seen[k] = true
					resp.Rows = append(resp.Rows, row)
				}
			}
		}
		resp.Shards = append(resp.Shards, rep)
	}
	if okCount == 0 {
		return nil, http.StatusServiceUnavailable, errors.New("all shards down")
	}
	resp.Count = len(resp.Rows)
	return resp, 0, nil
}

// gatherQuery pulls the fact dumps of the given shards and evaluates
// the query at the router over the replicated static knowledge.
func (rt *Router) gatherQuery(ctx context.Context, apiKey string, req *serve.QueryRequest, dec *Decomposition, shards []*Shard) (*QueryResponse, int, error) {
	dumps := make([][]mediator.SourceDump, len(shards))
	errs := make([]error, len(shards))
	gens := make([]uint64, len(shards))
	cached := make([]bool, len(shards))
	skipped := make([]bool, len(shards))
	var wg sync.WaitGroup
	for i, sh := range shards {
		if d, g, ok := rt.facts.get(sh.ID); ok {
			dumps[i], cached[i] = d, true
			rt.ctr.Add("router.facts_cache_hits", 1)
			continue
		} else {
			gens[i] = g
		}
		if !rt.man.Available(sh) {
			skipped[i] = true
			continue
		}
		wg.Add(1)
		go func(i int, sh *Shard) {
			defer wg.Done()
			fr, err := rt.man.Facts(ctx, sh)
			if err != nil {
				errs[i] = err
				return
			}
			dumps[i] = fr.Sources
			rt.ctr.Add("router.facts_fetches", 1)
		}(i, sh)
	}
	wg.Wait()

	resp := &QueryResponse{Mode: ModeGather.String()}
	var all []mediator.SourceDump
	for i, sh := range shards {
		rep := rt.man.Report(sh)
		switch {
		case skipped[i]:
			resp.Partial = true
		case errs[i] != nil:
			if shardFault(ctx, errs[i]) {
				rt.man.MarkFailure(sh, errs[i])
			}
			rep = rt.man.Report(sh)
			rep.Status = "failed"
			rep.Error = errs[i].Error()
			resp.Partial = true
		default:
			if !cached[i] {
				rt.man.MarkSuccess(sh)
				rep = rt.man.Report(sh)
				rt.facts.put(sh.ID, dumps[i], gens[i])
			}
			all = append(all, dumps[i]...)
		}
		resp.Shards = append(resp.Shards, rep)
	}
	if resp.Partial && dec.NoPartial {
		// An aggregate or negation over source facts evaluated without a
		// shard's contribution is wrong, not partial — refuse.
		return nil, http.StatusServiceUnavailable,
			errors.New("shard down and query aggregates/negates over source facts; partial answer would be wrong")
	}
	ans, err := rt.rep.QueryOverFacts(ctx, all, req.Query, req.Vars)
	if err != nil {
		if errors.Is(err, mediator.ErrUnknownPredicate) {
			return nil, http.StatusBadRequest, err
		}
		return nil, http.StatusInternalServerError, err
	}
	resp.Vars, resp.Rows = ans.Vars, renderRows(ans.Rows)
	resp.Count = len(resp.Rows)
	return resp, 0, nil
}

// renderRows renders term tuples as strings for JSON transport,
// matching the single-node service's rendering so per-shard and
// router-evaluated rows compare and dedup textually.
func renderRows(rows [][]term.Term) [][]string {
	out := make([][]string, len(rows))
	for i, row := range rows {
		cells := make([]string, len(row))
		for j, t := range row {
			cells[j] = t.String()
		}
		out[i] = cells
	}
	return out
}

// --- delta / sync ---

func (rt *Router) handleDelta(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if r.Method != http.MethodPost {
		rt.writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	var req serve.DeltaRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		rt.writeError(w, http.StatusBadRequest, fmt.Errorf("decode: %w", err))
		return
	}
	if req.Source == "" {
		rt.writeError(w, http.StatusBadRequest, errors.New("missing source"))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.requestTimeout())
	defer cancel()
	sh, ok := rt.man.Owner(req.Source)
	if !ok {
		// The topology may have changed under us (a shard restarted with
		// new sources): re-discover once before rejecting.
		if err := rt.man.Discover(ctx); err == nil {
			sh, ok = rt.man.Owner(req.Source)
		}
		if !ok {
			rt.ctr.Add("router.delta_errors", 1)
			rt.writeError(w, http.StatusBadRequest, fmt.Errorf("no shard owns source %s", req.Source))
			return
		}
	}
	if !rt.man.Available(sh) {
		rt.ctr.Add("router.delta_errors", 1)
		rt.writeError(w, http.StatusServiceUnavailable, fmt.Errorf("shard %s is down: %s", sh.ID, rt.man.Report(sh).Error))
		return
	}
	sr, err := rt.man.Delta(ctx, sh, r.Header.Get("X-API-Key"), &req)
	if err != nil {
		rt.ctr.Add("router.delta_errors", 1)
		if ShardDown(err) {
			if shardFault(ctx, err) {
				rt.man.MarkFailure(sh, err)
			}
			rt.writeError(w, http.StatusBadGateway, fmt.Errorf("shard %s: %w", sh.ID, err))
			return
		}
		var se *StatusError
		errors.As(err, &se)
		rt.writeError(w, se.Status, fmt.Errorf("shard %s: %s", sh.ID, se.Message))
		return
	}
	rt.man.MarkSuccess(sh)
	dropped := rt.applyShardDelta(sh.ID, sr)
	rt.ctr.Add("router.deltas", 1)
	rt.writeJSON(w, http.StatusOK, &DeltaResponse{DeltaResponse: *sr, Shard: sh.ID, RouterCacheDropped: dropped})
	rt.logf("method=POST path=/v1/delta source=%s shard=%s status=200 dur=%s dropped=%d",
		req.Source, sh.ID, time.Since(start), dropped)
}

// applyShardDelta applies one shard delta report's precise router-side
// cache effect: drop the answer-cache entries depending on the source
// (everything on a full rebuild) and that shard's cached fact dump.
func (rt *Router) applyShardDelta(shardID string, sr *serve.DeltaResponse) int {
	rt.facts.drop(shardID)
	var dropped int
	if sr.Full {
		dropped = rt.cache.invalidateAll()
		rt.ctr.Add("router.cache_invalidations_full", 1)
	} else {
		dropped = rt.cache.invalidateSource(sr.Source)
		rt.ctr.Add("router.cache_invalidations_source", 1)
	}
	rt.ctr.Add("router.cache_entries_dropped", int64(dropped))
	return dropped
}

func (rt *Router) handleSync(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		rt.writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.requestTimeout())
	defer cancel()
	apiKey := r.Header.Get("X-API-Key")
	shards := rt.man.Shards()
	refreshed := make([][]*serve.DeltaResponse, len(shards))
	errs := make([]error, len(shards))
	skipped := make([]bool, len(shards))
	var wg sync.WaitGroup
	for i, sh := range shards {
		if !rt.man.Available(sh) {
			skipped[i] = true
			continue
		}
		wg.Add(1)
		go func(i int, sh *Shard) {
			defer wg.Done()
			refreshed[i], errs[i] = rt.man.Sync(ctx, sh, apiKey)
		}(i, sh)
	}
	wg.Wait()

	var out []*DeltaResponse
	var reports []ShardReport
	var anyOK bool
	for i, sh := range shards {
		rep := rt.man.Report(sh)
		switch {
		case skipped[i]:
		case errs[i] != nil:
			if shardFault(ctx, errs[i]) {
				rt.man.MarkFailure(sh, errs[i])
			}
			rep = rt.man.Report(sh)
			rep.Status = "failed"
			rep.Error = errs[i].Error()
		default:
			rt.man.MarkSuccess(sh)
			rep = rt.man.Report(sh)
			anyOK = true
			for _, sr := range refreshed[i] {
				dropped := rt.applyShardDelta(sh.ID, sr)
				out = append(out, &DeltaResponse{DeltaResponse: *sr, Shard: sh.ID, RouterCacheDropped: dropped})
			}
		}
		reports = append(reports, rep)
	}
	if !anyOK {
		rt.ctr.Add("router.sync_errors", 1)
		rt.writeError(w, http.StatusServiceUnavailable, errors.New("all shards down"))
		return
	}
	rt.ctr.Add("router.syncs", 1)
	rt.writeJSON(w, http.StatusOK, map[string]any{"refreshed": out, "shards": reports})
}

// --- health / metrics ---

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	shards := rt.man.Shards()
	reports := make([]ShardReport, 0, len(shards))
	status := "ok"
	for _, sh := range shards {
		rep := rt.man.Report(sh)
		if rep.Status != "ok" {
			status = "degraded"
		}
		reports = append(reports, rep)
	}
	rt.writeJSON(w, http.StatusOK, map[string]any{
		"status":  status,
		"sources": rt.man.Sources(),
		"shards":  reports,
	})
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	rt.ctr.Set("router.cache_entries", int64(rt.cache.size()))
	snap := rt.ctr.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "%s %d\n", strings.ReplaceAll(n, ".", "_"), snap[n])
	}
}

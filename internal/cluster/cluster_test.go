package cluster

// In-process cluster harness: N shard medd services (real serve.Server
// instances over partitioned sources, each behind an httptest listener
// with an injectable outage switch) fronted by a real Router. The
// reference for every differential check is a single mediator holding
// all sources, built from identically seeded wrappers.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"modelmed/internal/mediator"
	"modelmed/internal/serve"
	"modelmed/internal/sources"
	"modelmed/internal/wrapper"
)

type testShard struct {
	id     string
	med    *mediator.Mediator
	srv    *serve.Server
	hs     *httptest.Server
	down   atomic.Bool
	slowMs atomic.Int64
}

// newTestShard boots one shard medd over the given wrappers. While
// down is set the shard answers 503 to everything — the transport
// stays up, which exercises the router's 5xx-as-outage handling and
// allows recovery.
func newTestShard(t testing.TB, id string, ws []wrapper.Wrapper) *testShard {
	t.Helper()
	med := mediator.New(sources.NeuroDM(), nil)
	for _, w := range ws {
		if err := med.Register(w); err != nil {
			t.Fatal(err)
		}
	}
	if err := med.DefineStandardViews(); err != nil {
		t.Fatal(err)
	}
	sh := &testShard{id: id, med: med, srv: serve.New(med, serve.Config{ShardID: id})}
	h := sh.srv.Handler()
	sh.hs = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if d := sh.slowMs.Load(); d > 0 {
			time.Sleep(time.Duration(d) * time.Millisecond)
		}
		if sh.down.Load() {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"error":"injected outage"}`)
			return
		}
		h.ServeHTTP(w, r)
	}))
	t.Cleanup(sh.hs.Close)
	return sh
}

type testCluster struct {
	router *Router
	hs     *httptest.Server
	shards []*testShard
}

func (c *testCluster) base() string { return c.hs.URL }

// sec5Wrappers builds the Section 5 federation wrappers with a fixed
// seed. Each call returns independent but identical wrappers, so a
// partitioned cluster and a monolithic reference see the same data.
func sec5Wrappers(t testing.TB, seed int64, nSyn, nNcm, nSl int) map[string]wrapper.Wrapper {
	t.Helper()
	ws, err := sources.Wrappers(seed, nSyn, nNcm, nSl)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]wrapper.Wrapper{}
	for _, w := range ws {
		out[w.Name()] = w
	}
	return out
}

// newReference builds the monolithic single-mediator reference over
// identically seeded wrappers.
func newReference(t testing.TB, seed int64, nSyn, nNcm, nSl int, extra []wrapper.Wrapper, only ...string) *mediator.Mediator {
	t.Helper()
	med := mediator.New(sources.NeuroDM(), nil)
	keep := map[string]bool{}
	for _, n := range only {
		keep[n] = true
	}
	for n, w := range sec5Wrappers(t, seed, nSyn, nNcm, nSl) {
		if len(keep) > 0 && !keep[n] {
			continue
		}
		if err := med.Register(w); err != nil {
			t.Fatal(err)
		}
	}
	for _, w := range extra {
		if err := med.Register(w); err != nil {
			t.Fatal(err)
		}
	}
	if err := med.DefineStandardViews(); err != nil {
		t.Fatal(err)
	}
	return med
}

// newTestCluster partitions the named sources across len(assign)
// shards and fronts them with a router. assign maps shard index ->
// source names; extra wrappers (beyond the Section 5 three) are looked
// up in extras by name.
func newTestCluster(t testing.TB, seed int64, nSyn, nNcm, nSl int, assign [][]string, extras map[string]wrapper.Wrapper, cfg RouterConfig) *testCluster {
	t.Helper()
	byName := sec5Wrappers(t, seed, nSyn, nNcm, nSl)
	for n, w := range extras {
		byName[n] = w
	}
	c := &testCluster{}
	var shardCfgs []ShardConfig
	for i, names := range assign {
		var ws []wrapper.Wrapper
		for _, n := range names {
			w, ok := byName[n]
			if !ok {
				t.Fatalf("unknown source %s in shard assignment", n)
			}
			ws = append(ws, w)
		}
		sh := newTestShard(t, fmt.Sprintf("shard%d", i), ws)
		c.shards = append(c.shards, sh)
		shardCfgs = append(shardCfgs, ShardConfig{ID: sh.id, URL: sh.hs.URL})
	}
	rep := mediator.New(sources.NeuroDM(), nil)
	if err := rep.DefineStandardViews(); err != nil {
		t.Fatal(err)
	}
	cfg.Shards = shardCfgs
	cfg.Replica = rep
	if cfg.Cooldown == 0 {
		cfg.Cooldown = 50 * time.Millisecond
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Discover(context.Background()); err != nil {
		t.Fatal(err)
	}
	c.router = rt
	c.hs = httptest.NewServer(rt.Handler())
	t.Cleanup(c.hs.Close)
	return c
}

// postJSON posts a JSON body and decodes the JSON reply into out.
func postJSON(t testing.TB, client *http.Client, url string, in any, out any, headers map[string]string) int {
	t.Helper()
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func routerQuery(t testing.TB, base string, req serve.QueryRequest) (QueryResponse, int) {
	t.Helper()
	var out QueryResponse
	status := postJSON(t, http.DefaultClient, base+"/v1/query", req, &out, nil)
	return out, status
}

// rowSet renders rows as a sorted, deduped string set for set-equality
// comparison.
func rowSet(rows [][]string) []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range rows {
		k := strings.Join(r, "\x1f")
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// refRowSet evaluates q on the reference the way a shard answers an
// unplanned /v1/query: full engine evaluation over the materialized,
// delta-patched store. (The planner pushdown path reads wrappers
// directly and would not see stated deltas.)
func refRowSet(t testing.TB, ref *mediator.Mediator, q string, vars []string) []string {
	t.Helper()
	ans, err := ref.Query(q, vars...)
	if err != nil {
		t.Fatalf("reference %q: %v", q, err)
	}
	rows := make([][]string, len(ans.Rows))
	for i, row := range ans.Rows {
		cells := make([]string, len(row))
		for j, tm := range row {
			cells[j] = tm.String()
		}
		rows[i] = cells
	}
	return rowSet(rows)
}

const twoShardAssignString = "shard0={SYNAPSE,SENSELAB} shard1={NCMIR}"

func twoShardAssign() [][]string {
	return [][]string{{"SYNAPSE", "SENSELAB"}, {"NCMIR"}}
}

func TestRouterModes(t *testing.T) {
	c := newTestCluster(t, 2026, 20, 30, 15, twoShardAssign(), nil, RouterConfig{})
	ref := newReference(t, 2026, 20, 30, 15, nil)

	cases := []struct {
		name string
		req  serve.QueryRequest
		mode string
	}{
		{"replicated", serve.QueryRequest{Query: `dm_isa_star(C, neuron)`, Vars: []string{"C"}}, "replicated"},
		{"proxy", serve.QueryRequest{
			Query: `src_obj('SENSELAB', N, neurotransmission), src_val('SENSELAB', N, organism, "rat")`,
			Vars:  []string{"N"}}, "proxy"},
		{"scatter", serve.QueryRequest{Query: `anchor(S, O, C), dm_isa_star(C, dendrite)`,
			Vars: []string{"S", "O", "C"}}, "scatter"},
		{"gather", serve.QueryRequest{Query: `protein_distribution(Root, P, Org, T, N)`,
			Vars: []string{"Root", "P", "Org", "T", "N"}}, "gather"},
		// SYNAPSE and NCMIR live on different shards: restricted gather.
		{"cross-shard sources", serve.QueryRequest{
			Query: `src_obj('SYNAPSE', O, C), src_obj('NCMIR', P, D)`,
			Vars:  []string{"O", "P"}}, "gather"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, status := routerQuery(t, c.base(), tc.req)
			if status != http.StatusOK {
				t.Fatalf("status %d", status)
			}
			if resp.Mode != tc.mode {
				t.Errorf("mode = %s, want %s", resp.Mode, tc.mode)
			}
			if resp.Partial {
				t.Errorf("unexpected partial answer")
			}
			got := rowSet(resp.Rows)
			want := refRowSet(t, ref, tc.req.Query, tc.req.Vars)
			if len(got) == 0 {
				t.Fatalf("empty answer (reference has %d rows)", len(want))
			}
			if strings.Join(got, "\n") != strings.Join(want, "\n") {
				t.Errorf("answer mismatch: %d rows vs reference %d", len(got), len(want))
			}
		})
	}
}

func TestRouterCacheAndDeltaInvalidation(t *testing.T) {
	c := newTestCluster(t, 2026, 20, 30, 15, twoShardAssign(), nil, RouterConfig{})

	slQuery := serve.QueryRequest{Query: `src_obj('SENSELAB', N, neurotransmission)`, Vars: []string{"N"}}
	nmQuery := serve.QueryRequest{Query: `src_obj('NCMIR', O, protein)`, Vars: []string{"O"}}
	for _, q := range []serve.QueryRequest{slQuery, nmQuery} {
		if resp, status := routerQuery(t, c.base(), q); status != 200 || resp.Cached {
			t.Fatalf("warmup: status %d cached %v", status, resp.Cached)
		}
	}
	if got := c.router.CacheSize(); got != 2 {
		t.Fatalf("cache size = %d, want 2", got)
	}
	if resp, _ := routerQuery(t, c.base(), slQuery); !resp.Cached {
		t.Fatal("second read should hit the router cache")
	}

	// Delta to SENSELAB: routed to shard0, drops only the SENSELAB
	// entry.
	var dr DeltaResponse
	status := postJSON(t, http.DefaultClient, c.base()+"/v1/delta", serve.DeltaRequest{
		Source: "SENSELAB",
		Adds:   []string{`src_obj('SENSELAB', nt_new_1, neurotransmission)`},
	}, &dr, nil)
	if status != http.StatusOK {
		t.Fatalf("delta status %d", status)
	}
	if dr.Shard != "shard0" {
		t.Errorf("delta routed to %s, want shard0", dr.Shard)
	}
	if dr.FactsAdded != 1 {
		t.Errorf("facts added = %d, want 1", dr.FactsAdded)
	}
	if dr.RouterCacheDropped != 1 {
		t.Errorf("router cache dropped = %d, want 1 (precise invalidation)", dr.RouterCacheDropped)
	}
	if resp, _ := routerQuery(t, c.base(), nmQuery); !resp.Cached {
		t.Error("NCMIR entry should have survived a SENSELAB delta")
	}
	// The re-computed SENSELAB answer must include the delta.
	resp, _ := routerQuery(t, c.base(), slQuery)
	if resp.Cached {
		t.Fatal("SENSELAB entry should have been dropped")
	}
	found := false
	for _, row := range resp.Rows {
		if len(row) == 1 && row[0] == "nt_new_1" {
			found = true
		}
	}
	if !found {
		t.Error("post-delta answer misses the added fact")
	}

	// A delta for a source no shard owns is a client error.
	status = postJSON(t, http.DefaultClient, c.base()+"/v1/delta",
		serve.DeltaRequest{Source: "NOPE", Adds: []string{`src_obj('NOPE', x, y)`}}, &map[string]any{}, nil)
	if status != http.StatusBadRequest {
		t.Errorf("unowned-source delta: status %d, want 400", status)
	}
}

func TestRouterScatterCacheInvalidation(t *testing.T) {
	c := newTestCluster(t, 2026, 20, 30, 15, twoShardAssign(), nil, RouterConfig{})
	scatter := serve.QueryRequest{Query: `anchor(S, O, C)`, Vars: []string{"S", "O", "C"}}
	if _, status := routerQuery(t, c.base(), scatter); status != 200 {
		t.Fatal("warmup failed")
	}
	if resp, _ := routerQuery(t, c.base(), scatter); !resp.Cached {
		t.Fatal("scatter answer should be cached")
	}
	// Scatter entries are global: any source delta drops them.
	var dr DeltaResponse
	if status := postJSON(t, http.DefaultClient, c.base()+"/v1/delta", serve.DeltaRequest{
		Source: "NCMIR", Adds: []string{`src_obj('NCMIR', pr_new_1, protein)`},
	}, &dr, nil); status != 200 {
		t.Fatalf("delta status %d", status)
	}
	if resp, _ := routerQuery(t, c.base(), scatter); resp.Cached {
		t.Error("global scatter entry should drop on any source delta")
	}
}

func TestRouterRateLimit(t *testing.T) {
	c := newTestCluster(t, 2026, 5, 5, 5, twoShardAssign(), nil, RouterConfig{
		RateLimits: map[string]float64{"probe": 2},
	})
	req := serve.QueryRequest{Query: `dm_isa_star(C, neuron)`, Vars: []string{"C"}}
	hdr := map[string]string{"X-API-Key": "probe"}
	var got429 bool
	for i := 0; i < 5; i++ {
		status := postJSON(t, http.DefaultClient, c.base()+"/v1/query", req, nil, hdr)
		if status == http.StatusTooManyRequests {
			got429 = true
		}
	}
	if !got429 {
		t.Fatal("burst over the key's rate never saw 429")
	}
	// Unlisted keys are unlimited when no default bucket exists.
	for i := 0; i < 5; i++ {
		if status := postJSON(t, http.DefaultClient, c.base()+"/v1/query", req, nil, nil); status != 200 {
			t.Fatalf("unlisted key: status %d", status)
		}
	}
	// Health stays reachable regardless.
	resp, err := http.Get(c.base() + "/healthz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz: %v %v", err, resp)
	}
	resp.Body.Close()
}

func TestRouterSyncAndHealthz(t *testing.T) {
	c := newTestCluster(t, 2026, 5, 5, 5, twoShardAssign(), nil, RouterConfig{})
	var health struct {
		Status  string        `json:"status"`
		Sources []string      `json:"sources"`
		Shards  []ShardReport `json:"shards"`
	}
	resp, err := http.Get(c.base() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || len(health.Shards) != 2 {
		t.Fatalf("healthz: %+v", health)
	}
	if strings.Join(health.Sources, ",") != "NCMIR,SENSELAB,SYNAPSE" {
		t.Fatalf("sources: %v", health.Sources)
	}

	// Warm the cache, then sync: reports fan in from both shards and the
	// router cache applies each report.
	if _, status := routerQuery(t, c.base(), serve.QueryRequest{Query: `anchor(S, O, C)`}); status != 200 {
		t.Fatal("warmup failed")
	}
	var syncOut struct {
		Refreshed []*DeltaResponse `json:"refreshed"`
		Shards    []ShardReport    `json:"shards"`
	}
	if status := postJSON(t, http.DefaultClient, c.base()+"/v1/sync", struct{}{}, &syncOut, nil); status != 200 {
		t.Fatalf("sync status %d", status)
	}
	if len(syncOut.Shards) != 2 {
		t.Fatalf("sync shard reports: %+v", syncOut.Shards)
	}

	// Metrics endpoint renders the counter set.
	mresp, err := http.Get(c.base() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "router_queries") {
		t.Fatalf("metrics missing router_queries:\n%s", buf.String())
	}
}

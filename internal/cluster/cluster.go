// Package cluster is the horizontal scale-out layer: a sharded
// mediator cluster. Registered sources are partitioned across N shard
// mediators (each an ordinary medd serving the subset of sources it
// owns; the domain map and views are small and replicated to every
// shard), and a thin router in front accepts the same /v1/query,
// /v1/delta and /v1/sync API, decomposes each query into per-shard
// subplans, executes them concurrently over HTTP, and merges the
// per-shard answer sets.
//
// The decomposition (decompose.go) classifies every query by how its
// answer relates to the per-shard answers:
//
//   - proxy: every source fact the query reads lives on one shard (or
//     the query reads only replicated knowledge) — forward verbatim.
//   - scatter: the union of per-shard answers is provably the global
//     answer — fan out, union, dedup.
//   - gather: cross-shard joins, aggregates or negation over source
//     facts make per-shard answers insufficient — pull each shard's
//     fact dump (GET /v1/facts) and evaluate at the router over the
//     replicated static knowledge.
//
// Delta propagation is precise: a source delta posted to the router
// goes to the owning shard only, and on success invalidates exactly
// the router-level answer-cache entries depending on that source plus
// that shard's cached fact dump — the same DeltaReport-shaped
// invalidation contract the single-node service uses.
//
// Degraded shards degrade gracefully, never silently: scatter and
// non-aggregated gather answers over a down shard are flagged partial
// with per-shard reports (sound by monotonicity — every returned row
// is a true answer); aggregated gathers refuse (a partial sum is a
// wrong answer, not a partial one); proxies to a down shard fail with
// the shard's report attached.
package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// ShardConfig names one shard and its base URL.
type ShardConfig struct {
	ID  string
	URL string
}

// ParseShardSpec parses the -shards flag syntax: comma-separated
// entries, each either a bare base URL (IDs default to shard0,
// shard1, ...) or ID=URL.
func ParseShardSpec(spec string) ([]ShardConfig, error) {
	var out []ShardConfig
	seen := map[string]bool{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		sc := ShardConfig{ID: fmt.Sprintf("shard%d", len(out)), URL: part}
		if id, url, found := strings.Cut(part, "="); found && !strings.Contains(id, "/") {
			id = strings.TrimSpace(id)
			if id == "" {
				return nil, fmt.Errorf("shards: empty id in %q", part)
			}
			sc.ID, sc.URL = id, strings.TrimSpace(url)
		}
		if !strings.HasPrefix(sc.URL, "http://") && !strings.HasPrefix(sc.URL, "https://") {
			return nil, fmt.Errorf("shards: %q: want http(s) base URL", part)
		}
		sc.URL = strings.TrimRight(sc.URL, "/")
		if seen[sc.ID] {
			return nil, fmt.Errorf("shards: duplicate id %q", sc.ID)
		}
		seen[sc.ID] = true
		out = append(out, sc)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("shards: no shards configured")
	}
	return out, nil
}

// Shard is one mediator shard as the manager sees it: its address, the
// sources it owns (discovered from /healthz), and its health state.
type Shard struct {
	ID  string
	URL string

	mu       sync.Mutex
	sources  []string
	failures int
	down     bool
	since    time.Time
	lastErr  string
}

// Sources returns the shard's discovered source names.
func (sh *Shard) Sources() []string {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return append([]string(nil), sh.sources...)
}

// ShardReport is one shard's outcome attached to a router response —
// the cluster-level analogue of mediator.SourceReport.
type ShardReport struct {
	ID      string   `json:"shard"`
	Sources []string `json:"sources,omitempty"`
	// Status is "ok", "down" (skipped: breaker open) or "failed" (this
	// request's call to the shard failed).
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
	Rows   int    `json:"rows,omitempty"`
}

// ManagerConfig tunes shard lifecycle and health tracking.
type ManagerConfig struct {
	Shards []ShardConfig
	// FailThreshold is the consecutive-failure count that marks a shard
	// down (default 1: the first transport failure opens the breaker —
	// shards are single processes, not flaky WANs; Cooldown paces the
	// re-probes).
	FailThreshold int
	// Cooldown is how long a down shard is skipped before the next
	// request is allowed to re-probe it (default 500ms).
	Cooldown time.Duration
	// Client issues the HTTP calls (default: 10s-timeout client).
	Client *http.Client
	// now is a test hook for the health clock.
	now func() time.Time
}

func (c ManagerConfig) failThreshold() int {
	if c.FailThreshold <= 0 {
		return 1
	}
	return c.FailThreshold
}

func (c ManagerConfig) cooldown() time.Duration {
	if c.Cooldown <= 0 {
		return 500 * time.Millisecond
	}
	return c.Cooldown
}

// Manager owns the shard set: source->shard assignment (discovered
// from each shard's /healthz), health tracking with a breaker-shaped
// consecutive-failure counter and cooldown-paced re-probes, and the
// shard HTTP client.
type Manager struct {
	cfg    ManagerConfig
	client *http.Client
	now    func() time.Time

	mu       sync.Mutex
	shards   []*Shard // stable configuration order
	bySource map[string]*Shard
}

// NewManager builds a manager over the configured shards. Call
// Discover to learn the source assignment before routing.
func NewManager(cfg ManagerConfig) (*Manager, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("cluster: no shards configured")
	}
	m := &Manager{
		cfg:      cfg,
		client:   cfg.Client,
		now:      cfg.now,
		bySource: map[string]*Shard{},
	}
	if m.client == nil {
		m.client = &http.Client{Timeout: 10 * time.Second}
	}
	if m.now == nil {
		m.now = time.Now
	}
	seen := map[string]bool{}
	for _, sc := range cfg.Shards {
		if seen[sc.ID] {
			return nil, fmt.Errorf("cluster: duplicate shard id %q", sc.ID)
		}
		seen[sc.ID] = true
		m.shards = append(m.shards, &Shard{ID: sc.ID, URL: strings.TrimRight(sc.URL, "/")})
	}
	return m, nil
}

// Shards returns the shards in configuration order.
func (m *Manager) Shards() []*Shard {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]*Shard(nil), m.shards...)
}

// Owner returns the shard owning the named source, if discovered.
func (m *Manager) Owner(source string) (*Shard, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	sh, ok := m.bySource[source]
	return sh, ok
}

// Discover probes every shard's /healthz and rebuilds the
// source->shard assignment. A shard that cannot be reached keeps its
// previous source list (it may be restarting) and is marked failed;
// reaching it again refreshes its list. Two shards claiming the same
// source is a deployment error.
func (m *Manager) Discover(ctx context.Context) error {
	shards := m.Shards()
	type probe struct {
		sources []string
		err     error
	}
	probes := make([]probe, len(shards))
	var wg sync.WaitGroup
	for i, sh := range shards {
		wg.Add(1)
		go func(i int, sh *Shard) {
			defer wg.Done()
			probes[i].sources, probes[i].err = m.healthz(ctx, sh)
		}(i, sh)
	}
	wg.Wait()
	for i, sh := range shards {
		if probes[i].err != nil {
			m.MarkFailure(sh, probes[i].err)
			continue
		}
		m.MarkSuccess(sh)
		sh.mu.Lock()
		sh.sources = probes[i].sources
		sh.mu.Unlock()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	bySource := map[string]*Shard{}
	for _, sh := range m.shards {
		for _, src := range sh.Sources() {
			if other, dup := bySource[src]; dup && other != sh {
				return fmt.Errorf("cluster: source %s claimed by shards %s and %s", src, other.ID, sh.ID)
			}
			bySource[src] = sh
		}
	}
	m.bySource = bySource
	return nil
}

// Sources returns every discovered source name, sorted.
func (m *Manager) Sources() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.bySource))
	for s := range m.bySource {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Available reports whether a request may be sent to the shard now:
// healthy, or down with the cooldown elapsed (the request doubles as
// the half-open probe; its outcome re-marks the shard).
func (m *Manager) Available(sh *Shard) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if !sh.down {
		return true
	}
	return m.now().Sub(sh.since) >= m.cfg.cooldown()
}

// MarkSuccess records a successful shard call, closing its breaker.
func (m *Manager) MarkSuccess(sh *Shard) {
	sh.mu.Lock()
	sh.failures = 0
	sh.down = false
	sh.lastErr = ""
	sh.mu.Unlock()
}

// MarkFailure records a failed shard call; at the threshold the shard
// goes down and is skipped until the cooldown elapses.
func (m *Manager) MarkFailure(sh *Shard, err error) {
	sh.mu.Lock()
	sh.failures++
	if err != nil {
		sh.lastErr = err.Error()
	}
	if sh.failures >= m.cfg.failThreshold() {
		sh.down = true
		sh.since = m.now()
	}
	sh.mu.Unlock()
}

// Report renders the shard's current health as a ShardReport.
func (m *Manager) Report(sh *Shard) ShardReport {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	r := ShardReport{ID: sh.ID, Sources: append([]string(nil), sh.sources...), Status: "ok"}
	if sh.down {
		r.Status = "down"
		r.Error = sh.lastErr
	}
	return r
}

package cluster

// HTTP client for shard medd instances. Every call classifies its
// outcome for the health tracker: a transport error or 5xx is a shard
// failure (MarkFailure-worthy); a 4xx is the *request's* fault — the
// shard answered, so its breaker stays closed and the status/body are
// relayed to the caller.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"modelmed/internal/serve"
)

// StatusError is a shard's non-2xx reply: the shard is up and spoke
// JSON, but rejected the request. Status < 500 means the request was
// bad, not the shard.
type StatusError struct {
	Status  int
	Message string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("shard status %d: %s", e.Status, e.Message)
}

// ShardDown reports whether err means the shard itself failed (and the
// breaker should count it), as opposed to rejecting a bad request.
func ShardDown(err error) bool {
	if err == nil {
		return false
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.Status >= 500
	}
	return true // transport / decode failure
}

// shardFault reports whether err is evidence against the shard for
// breaker purposes. A sub-request that died because the caller's own
// request context was canceled or timed out says nothing about shard
// health — counting it would let an impatient (or disconnecting)
// client trip the breaker and black out the shard for every other
// tenant until the cooldown.
func shardFault(ctx context.Context, err error) bool {
	if ctx.Err() != nil {
		return false
	}
	return ShardDown(err)
}

// doJSON issues one request and decodes a JSON reply into out. Non-2xx
// replies become *StatusError carrying the server's error message.
func (m *Manager) doJSON(ctx context.Context, method, url, apiKey string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("cluster: encode: %w", err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if apiKey != "" {
		req.Header.Set("X-API-Key", apiKey)
	}
	resp, err := m.client.Do(req)
	if err != nil {
		return fmt.Errorf("cluster: %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		msg := http.StatusText(resp.StatusCode)
		var e struct {
			Error string `json:"error"`
		}
		if b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16)); len(b) > 0 {
			if json.Unmarshal(b, &e) == nil && e.Error != "" {
				msg = e.Error
			}
		}
		return &StatusError{Status: resp.StatusCode, Message: msg}
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("cluster: %s: decode: %w", url, err)
	}
	return nil
}

// healthz probes one shard and returns its registered sources.
func (m *Manager) healthz(ctx context.Context, sh *Shard) ([]string, error) {
	var resp struct {
		Sources []string `json:"sources"`
	}
	if err := m.doJSON(ctx, http.MethodGet, sh.URL+"/healthz", "", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Sources, nil
}

// Query posts a query request to one shard, verbatim.
func (m *Manager) Query(ctx context.Context, sh *Shard, apiKey string, req *serve.QueryRequest) (*serve.QueryResponse, error) {
	var resp serve.QueryResponse
	if err := m.doJSON(ctx, http.MethodPost, sh.URL+"/v1/query", apiKey, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Delta posts a source delta to one shard.
func (m *Manager) Delta(ctx context.Context, sh *Shard, apiKey string, req *serve.DeltaRequest) (*serve.DeltaResponse, error) {
	var resp serve.DeltaResponse
	if err := m.doJSON(ctx, http.MethodPost, sh.URL+"/v1/delta", apiKey, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Sync triggers a full source refresh on one shard and returns its
// per-source delta reports.
func (m *Manager) Sync(ctx context.Context, sh *Shard, apiKey string) ([]*serve.DeltaResponse, error) {
	var resp struct {
		Refreshed []*serve.DeltaResponse `json:"refreshed"`
	}
	if err := m.doJSON(ctx, http.MethodPost, sh.URL+"/v1/sync", apiKey, nil, &resp); err != nil {
		return nil, err
	}
	return resp.Refreshed, nil
}

// Facts fetches one shard's per-source fact dump.
func (m *Manager) Facts(ctx context.Context, sh *Shard) (*serve.FactsResponse, error) {
	var resp serve.FactsResponse
	if err := m.doJSON(ctx, http.MethodGet, sh.URL+"/v1/facts", "", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

package cluster

// Router-side caches. The answer cache mirrors the serving layer's
// invalidation contract (per-source dependency sets, global entries,
// a generation counter guarding stale inserts) in a simpler single-
// partition LRU: the router has no per-tenant isolation duty (each
// shard enforces its own) and no single-flight (the shards behind it
// already collapse duplicate work). The facts cache keeps one fact
// dump per shard so consecutive gather queries don't re-pull an
// unchanged federation; a delta routed to a shard drops exactly that
// shard's dump.

import (
	"container/list"
	"sync"

	"modelmed/internal/mediator"
)

type cacheEntry struct {
	key    string
	resp   QueryResponse
	deps   map[string]bool // source names; nil+!global = never invalidated
	global bool
}

type answerCache struct {
	mu      sync.Mutex
	max     int
	gen     uint64
	ll      *list.List // front = most recent
	entries map[string]*list.Element
}

func newAnswerCache(max int) *answerCache {
	if max <= 0 {
		max = 1024
	}
	return &answerCache{max: max, ll: list.New(), entries: map[string]*list.Element{}}
}

// get returns the cached response and the generation observed, for a
// later generation-guarded put.
func (c *answerCache) get(key string) (QueryResponse, uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return QueryResponse{}, c.gen, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).resp, c.gen, true
}

// gen returns the current generation without a lookup.
func (c *answerCache) generation() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// put inserts unless an invalidation ran since gen was observed — an
// answer computed against pre-delta shards must not outlive the delta.
func (c *answerCache) put(key string, resp QueryResponse, deps []string, global bool, gen uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gen != gen {
		return
	}
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		e.resp = resp
		return
	}
	e := &cacheEntry{key: key, resp: resp, global: global}
	if len(deps) > 0 {
		e.deps = make(map[string]bool, len(deps))
		for _, d := range deps {
			e.deps[d] = true
		}
	}
	c.entries[key] = c.ll.PushFront(e)
	for len(c.entries) > c.max {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
	}
}

// invalidateSource drops entries depending on the source (and global
// ones) and bumps the generation.
func (c *answerCache) invalidateSource(source string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	var dropped int
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*cacheEntry)
		if e.global || e.deps[source] {
			c.ll.Remove(el)
			delete(c.entries, e.key)
			dropped++
		}
		el = next
	}
	return dropped
}

// invalidateAll drops everything and bumps the generation.
func (c *answerCache) invalidateAll() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	dropped := len(c.entries)
	c.ll.Init()
	c.entries = map[string]*list.Element{}
	return dropped
}

func (c *answerCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// factsCache holds at most one fact dump per shard, generation-guarded
// per shard so a fetch racing a delta cannot reinstall the pre-delta
// dump.
type factsCache struct {
	mu    sync.Mutex
	dumps map[string][]mediator.SourceDump
	gens  map[string]uint64
}

func newFactsCache() *factsCache {
	return &factsCache{dumps: map[string][]mediator.SourceDump{}, gens: map[string]uint64{}}
}

func (c *factsCache) get(shard string) ([]mediator.SourceDump, uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.dumps[shard]
	return d, c.gens[shard], ok
}

func (c *factsCache) put(shard string, dumps []mediator.SourceDump, gen uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gens[shard] != gen {
		return
	}
	c.dumps[shard] = dumps
}

func (c *factsCache) drop(shard string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gens[shard]++
	delete(c.dumps, shard)
}

func (c *factsCache) dropAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for s := range c.gens {
		c.gens[s]++
	}
	for s := range c.dumps {
		c.gens[s]++
		delete(c.dumps, s)
	}
}

package cluster

// Query decomposition: when is the union of per-shard answers the
// global answer?
//
// The federation's EDB is partitioned by source (src_obj/src_val/
// src_tuple/src_sub/anchor all carry the source in argument 0) while
// the static knowledge — F-logic axioms, domain map + closure rules,
// view definitions — is replicated to every shard. For a *monotone*
// query, a derivation that only reads facts of one source exists
// entirely on that source's shard, so:
//
//   - If every sourceful access in the query's dependency cone shares
//     one source variable (or one ground source), each answer tuple
//     has a single-source derivation → evaluating the query on every
//     shard and unioning the answers is exact (scatter), and with a
//     ground source the one owning shard suffices (proxy).
//
//   - Joins across *distinct* source groups, aggregates over sourceful
//     subgoals, negation over sourceful subgoals, and the GCM bridge
//     predicates (which erase the source argument, so a join through
//     them can silently cross shards) all admit derivations spanning
//     shards → per-shard answers are insufficient and the router must
//     gather the shards' fact dumps and evaluate globally (gather).
//
// The analysis assigns every predicate a signature by walking the
// view/aux rule graph: replicated (level 0), single-source (level 1,
// with the ground source when fixed), or multi-source (level 2);
// cycles and anything unrecognized degrade conservatively to multi.
// Wrong-direction errors differ in kind: misclassifying toward gather
// costs performance, toward scatter costs correctness — every
// conservative default here points at gather.

import (
	"fmt"
	"sort"
	"strings"

	"modelmed/internal/datalog"
	"modelmed/internal/mediator"
	"modelmed/internal/term"
)

// Mode says how the router executes a query.
type Mode int

const (
	// ModeReplicated: the query reads no source facts; the router's own
	// replica of the static knowledge answers it without any shard call.
	ModeReplicated Mode = iota
	// ModeSources: the query needs exactly the listed ground sources.
	// One owning shard → proxy; owners spanning shards → gather
	// restricted to the owners.
	ModeSources
	// ModeScatter: fan out to every shard, union and dedup the answers.
	ModeScatter
	// ModeGather: pull every shard's fact dump and evaluate at the
	// router.
	ModeGather
)

func (m Mode) String() string {
	switch m {
	case ModeReplicated:
		return "replicated"
	case ModeSources:
		return "sources"
	case ModeScatter:
		return "scatter"
	}
	return "gather"
}

// Decomposition is the classification result for one query.
type Decomposition struct {
	Mode Mode
	// Sources are the ground sources the query depends on (ModeSources).
	Sources []string
	// NoPartial marks queries whose gathered answer may not be degraded
	// to a subset: an aggregate or negation over sourceful subgoals
	// means an answer computed without a down shard's facts can be
	// *wrong*, not merely incomplete, so the router must refuse instead.
	NoPartial bool
	// Reason is the one-line classification trace.
	Reason string
}

// replicatedPreds is the static knowledge vocabulary: true on every
// shard and on the router's replica, carrying no source facts.
var replicatedPreds = map[string]bool{
	"dm_concept": true, "dm_isa": true, "dm_edge": true,
	"dm_isa_star": true, "dm_tc": true, "dm_dc": true, "dm_dc_down": true,
	"dm_down": true, "role_star": true, "dm_role": true,
	"role": true, "role_base": true,
}

// sourcefulPreds carry the owning source in argument 0 — the
// partitioned EDB.
var sourcefulPreds = map[string]bool{
	mediator.PredSrcObj: true, mediator.PredSrcVal: true,
	mediator.PredSrcTuple: true, mediator.PredSrcSub: true,
	mediator.PredAnchor: true,
}

// bridgePreds are the GCM bridge: derived from source facts with the
// source argument erased, so joins through them can cross shards
// invisibly. Conservatively multi-source.
var bridgePreds = map[string]bool{
	"instance": true, "subclass": true, "method": true,
	"methodinst": true, "rel": true, "relattr": true, "relinst": true,
}

// predSig is the per-predicate summary of the rule-graph walk.
type predSig struct {
	level int // 0 replicated, 1 single-source, 2 multi-source
	// src is the fixed ground source when level 1 derivations all read
	// it; "" means "one source per tuple, but which varies".
	src       string
	noPartial bool
}

type analyzer struct {
	rules    map[string][]datalog.Rule // derived pred -> defining rules
	sigs     map[string]predSig
	visiting map[string]bool
	anon     int // fresh-token counter for anonymous single-source refs
}

// bodyInfo summarizes one body's sourceful accesses. tokens holds one
// entry per distinct source group: "src:NAME" for ground sources,
// "var:V" for a shared source variable, "anon:N" for each reference to
// an anonymous single-source derived predicate.
type bodyInfo struct {
	tokens    map[string]bool
	multi     bool
	noPartial bool
}

func (b *bodyInfo) token(t string) {
	if b.tokens == nil {
		b.tokens = map[string]bool{}
	}
	b.tokens[t] = true
}

// Classify decomposes a parsed query against the registered views and
// the query's own auxiliary rules.
func Classify(body []datalog.BodyElem, aux, views []datalog.Rule) Decomposition {
	a := &analyzer{
		rules:    map[string][]datalog.Rule{},
		sigs:     map[string]predSig{},
		visiting: map[string]bool{},
	}
	for _, r := range views {
		a.rules[r.Head.Pred] = append(a.rules[r.Head.Pred], r)
	}
	for _, r := range aux {
		a.rules[r.Head.Pred] = append(a.rules[r.Head.Pred], r)
	}
	info := a.body(body)

	var ground, open []string
	for t := range info.tokens {
		if name, ok := strings.CutPrefix(t, "src:"); ok {
			ground = append(ground, name)
		} else {
			open = append(open, t)
		}
	}
	sort.Strings(ground)

	d := Decomposition{NoPartial: info.noPartial}
	switch {
	case info.multi:
		d.Mode = ModeGather
		d.Reason = "multi-source dependency (cross-group join, bridge predicate, aggregate or negation over source facts)"
	case len(info.tokens) == 0:
		d.Mode = ModeReplicated
		d.Reason = "reads only replicated knowledge"
	case len(info.tokens) == 1 && len(ground) == 1:
		d.Mode = ModeSources
		d.Sources = ground
		d.Reason = fmt.Sprintf("single ground source %s", ground[0])
	case len(open) == 0:
		// Several ground sources, no open group: the router needs
		// exactly these sources' facts.
		d.Mode = ModeSources
		d.Sources = ground
		d.Reason = fmt.Sprintf("ground sources %s", strings.Join(ground, ","))
	case len(info.tokens) == 1:
		d.Mode = ModeScatter
		d.Reason = "single source group per derivation; per-shard union is exact"
	default:
		d.Mode = ModeGather
		d.Reason = fmt.Sprintf("%d distinct source groups join", len(info.tokens))
	}
	return d
}

// body analyzes one rule or query body.
func (a *analyzer) body(body []datalog.BodyElem) bodyInfo {
	var info bodyInfo
	for _, e := range body {
		switch x := e.(type) {
		case datalog.Literal:
			a.literal(x, &info)
		case datalog.Aggregate:
			var inner bodyInfo
			for _, l := range x.Body {
				a.literal(l, &inner)
			}
			// Aggregating over sourceful subgoals sums/counts a
			// partitioned relation: never union-sound, and a missing
			// shard changes the value rather than shrinking the set.
			if inner.multi || len(inner.tokens) > 0 {
				info.multi = true
				info.noPartial = true
			}
			if inner.noPartial {
				info.noPartial = true
			}
		}
	}
	return info
}

func (a *analyzer) literal(l datalog.Literal, info *bodyInfo) {
	switch {
	case datalog.IsBuiltin(l.Pred, len(l.Args)) || replicatedPreds[l.Pred]:
		return
	case sourcefulPreds[l.Pred]:
		if l.Neg {
			// not src_val(...) over a partitioned relation: a shard
			// missing the fact would wrongly satisfy the negation.
			info.multi = true
			info.noPartial = true
			return
		}
		if len(l.Args) == 0 {
			info.multi = true
			return
		}
		switch src := l.Args[0]; src.Kind() {
		case term.KindAtom:
			info.token("src:" + src.Name())
		case term.KindVar:
			info.token("var:" + src.Name())
		default:
			info.multi = true
		}
	case bridgePreds[l.Pred]:
		info.multi = true
		if l.Neg {
			info.noPartial = true
		}
	default:
		sig := a.sig(l.Pred)
		if l.Neg && sig.level > 0 {
			info.multi = true
			info.noPartial = true
			return
		}
		switch sig.level {
		case 0:
			// replicated-only derivation
		case 1:
			if sig.src != "" {
				info.token("src:" + sig.src)
			} else {
				// Anonymous single-source: each reference may bind a
				// different source, so each gets a fresh group.
				a.anon++
				info.token(fmt.Sprintf("anon:%d", a.anon))
			}
		default:
			info.multi = true
		}
		if sig.noPartial {
			info.noPartial = true
		}
	}
}

// sig computes (and memoizes) a derived predicate's signature.
// Unknown predicates and cycles degrade to multi-source.
func (a *analyzer) sig(pred string) predSig {
	if s, ok := a.sigs[pred]; ok {
		return s
	}
	rules := a.rules[pred]
	if len(rules) == 0 || a.visiting[pred] {
		return predSig{level: 2}
	}
	a.visiting[pred] = true
	defer delete(a.visiting, pred)

	s := predSig{}
	first := true
	for _, r := range rules {
		info := a.body(r.Body)
		var level int
		var src string
		switch {
		case info.multi || len(info.tokens) > 1:
			level = 2
		case len(info.tokens) == 1:
			level = 1
			for t := range info.tokens {
				if name, ok := strings.CutPrefix(t, "src:"); ok {
					src = name
				}
			}
		}
		if level > s.level {
			s.level = level
		}
		if info.noPartial {
			s.noPartial = true
		}
		// The pred's fixed source survives only if every single-source
		// rule reads the same ground source.
		if level == 1 {
			if first {
				s.src = src
				first = false
			} else if s.src != src {
				s.src = ""
			}
			if src == "" {
				s.src = ""
			}
		}
	}
	a.sigs[pred] = s
	return s
}

package xmlio

import (
	"encoding/xml"
	"fmt"
	"sort"
	"strconv"

	"modelmed/internal/gcm"
	"modelmed/internal/parser"
	"modelmed/internal/term"
)

// GCMX is the native XML exchange format for conceptual models. The
// structural codec below preserves full typing (term kinds, cardinality
// bounds, scalar/anchor flags, semantic rules and constraints); the
// gcmx *plug-in* ingests the same documents through the generic
// reify-and-translate path.

type xValue struct {
	Method string `xml:"method,attr,omitempty"`
	Type   string `xml:"type,attr"`
	V      string `xml:"v,attr"`
}

type xMethod struct {
	Name       string `xml:"name,attr"`
	Result     string `xml:"result,attr"`
	Scalar     bool   `xml:"scalar,attr,omitempty"`
	Anchor     bool   `xml:"anchor,attr,omitempty"`
	Context    bool   `xml:"context,attr,omitempty"`
	Derivation string `xml:"derivation,omitempty"`
}

type xSuper struct {
	Name string `xml:"name,attr"`
}

type xClass struct {
	Name    string    `xml:"name,attr"`
	Supers  []xSuper  `xml:"super"`
	Methods []xMethod `xml:"method"`
}

type xAttr struct {
	Name  string `xml:"name,attr"`
	Class string `xml:"class,attr"`
	Min   int    `xml:"min,attr,omitempty"`
	Max   int    `xml:"max,attr,omitempty"`
	Card  bool   `xml:"card,attr,omitempty"` // whether min/max are meaningful
}

type xRelation struct {
	Name  string  `xml:"name,attr"`
	Attrs []xAttr `xml:"attr"`
}

type xConstraint struct {
	Kind   string `xml:"kind,attr"`
	Class  string `xml:"class,attr,omitempty"`
	Rel    string `xml:"rel,attr,omitempty"`
	Method string `xml:"method,attr,omitempty"`
	Sub    string `xml:"sub,attr,omitempty"`
	Super  string `xml:"super,attr,omitempty"`
}

type xObject struct {
	ID     string   `xml:"id,attr"`
	Class  string   `xml:"class,attr"`
	Values []xValue `xml:"value"`
}

type xArg struct {
	Type string `xml:"type,attr"`
	V    string `xml:"v,attr"`
}

type xTuple struct {
	Rel  string `xml:"rel,attr"`
	Args []xArg `xml:"arg"`
}

type xModel struct {
	XMLName     xml.Name      `xml:"cm"`
	Name        string        `xml:"name,attr"`
	Format      string        `xml:"format,attr"`
	Classes     []xClass      `xml:"class"`
	Relations   []xRelation   `xml:"relation"`
	Rules       []string      `xml:"rule"`
	Constraints []xConstraint `xml:"constraint"`
	Objects     []xObject     `xml:"object"`
	Tuples      []xTuple      `xml:"tuple"`
}

// encodeTerm renders a term as (type, value) strings.
func encodeTerm(t term.Term) (string, string, error) {
	switch t.Kind() {
	case term.KindAtom:
		return "atom", t.Name(), nil
	case term.KindString:
		return "string", t.Name(), nil
	case term.KindInt:
		return "int", strconv.FormatInt(t.IntVal(), 10), nil
	case term.KindFloat:
		return "float", strconv.FormatFloat(t.FloatVal(), 'g', -1, 64), nil
	case term.KindCompound:
		// Compound terms (e.g. Skolem placeholders) are round-tripped in
		// concrete syntax.
		return "term", t.String(), nil
	}
	return "", "", fmt.Errorf("xmlio: cannot encode term %s", t)
}

func decodeTerm(typ, v string) (term.Term, error) {
	switch typ {
	case "atom":
		return term.Atom(v), nil
	case "string":
		return term.Str(v), nil
	case "int":
		i, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return term.Term{}, fmt.Errorf("xmlio: bad int %q: %w", v, err)
		}
		return term.Int(i), nil
	case "float":
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return term.Term{}, fmt.Errorf("xmlio: bad float %q: %w", v, err)
		}
		return term.Float(f), nil
	case "term":
		return parser.ParseTerm(v)
	}
	return term.Term{}, fmt.Errorf("xmlio: unknown term type %q", typ)
}

// EncodeModel renders a gcm.Model as a GCMX document.
func EncodeModel(m *gcm.Model) ([]byte, error) {
	x := xModel{Name: m.Name, Format: "gcmx"}
	classNames := sortedKeys(m.Classes)
	for _, cn := range classNames {
		c := m.Classes[cn]
		xc := xClass{Name: c.Name}
		for _, s := range c.Super {
			xc.Supers = append(xc.Supers, xSuper{Name: s})
		}
		for _, sig := range c.Methods {
			xc.Methods = append(xc.Methods, xMethod{
				Name: sig.Name, Result: sig.Result, Scalar: sig.Scalar,
				Anchor: sig.Anchor, Context: sig.Context, Derivation: sig.Derivation})
		}
		x.Classes = append(x.Classes, xc)
	}
	for _, rn := range sortedKeys(m.Relations) {
		r := m.Relations[rn]
		xr := xRelation{Name: r.Name}
		for _, a := range r.Attrs {
			xa := xAttr{Name: a.Name, Class: a.Class}
			if a.Card.Constrained() {
				xa.Card = true
				xa.Min, xa.Max = a.Card.Min, a.Card.Max
			}
			xr.Attrs = append(xr.Attrs, xa)
		}
		x.Relations = append(x.Relations, xr)
	}
	for _, r := range m.Rules {
		x.Rules = append(x.Rules, r.String())
	}
	for _, c := range m.Constraints {
		switch k := c.(type) {
		case gcm.PartialOrder:
			x.Constraints = append(x.Constraints, xConstraint{Kind: "partialOrder", Class: k.Class, Rel: k.Rel})
		case gcm.KeyMethod:
			x.Constraints = append(x.Constraints, xConstraint{Kind: "keyMethod", Class: k.Class, Method: k.Method})
		case gcm.Inclusion:
			x.Constraints = append(x.Constraints, xConstraint{Kind: "inclusion", Sub: k.Sub, Super: k.Super})
		default:
			return nil, fmt.Errorf("xmlio: cannot encode constraint %T", c)
		}
	}
	for _, o := range m.Objects {
		typ, v, err := encodeTerm(o.ID)
		if err != nil {
			return nil, err
		}
		if typ != "atom" {
			return nil, fmt.Errorf("xmlio: object IDs must be atoms, got %s %s", typ, v)
		}
		xo := xObject{ID: v, Class: o.Class}
		for _, mn := range sortedKeys(o.Values) {
			for _, val := range o.Values[mn] {
				typ, v, err := encodeTerm(val)
				if err != nil {
					return nil, err
				}
				xo.Values = append(xo.Values, xValue{Method: mn, Type: typ, V: v})
			}
		}
		x.Objects = append(x.Objects, xo)
	}
	for _, rn := range sortedKeys(m.Tuples) {
		for _, tp := range m.Tuples[rn] {
			xt := xTuple{Rel: rn}
			for _, a := range tp {
				typ, v, err := encodeTerm(a)
				if err != nil {
					return nil, err
				}
				xt.Args = append(xt.Args, xArg{Type: typ, V: v})
			}
			x.Tuples = append(x.Tuples, xt)
		}
	}
	return xml.MarshalIndent(x, "", "  ")
}

// DecodeModel parses a GCMX document into a gcm.Model.
func DecodeModel(doc []byte) (*gcm.Model, error) {
	var x xModel
	if err := xml.Unmarshal(doc, &x); err != nil {
		return nil, fmt.Errorf("xmlio: %w", err)
	}
	m := gcm.NewModel(x.Name)
	for _, xc := range x.Classes {
		c := &gcm.Class{Name: xc.Name}
		for _, s := range xc.Supers {
			c.Super = append(c.Super, s.Name)
		}
		for _, xm := range xc.Methods {
			c.Methods = append(c.Methods, gcm.MethodSig{
				Name: xm.Name, Result: xm.Result, Scalar: xm.Scalar,
				Anchor: xm.Anchor, Context: xm.Context, Derivation: xm.Derivation})
		}
		m.AddClass(c)
	}
	for _, xr := range x.Relations {
		r := &gcm.Relation{Name: xr.Name}
		for _, xa := range xr.Attrs {
			a := gcm.RelAttr{Name: xa.Name, Class: xa.Class}
			if xa.Card {
				a.Card = gcm.Cardinality{Min: xa.Min, Max: xa.Max}
			}
			r.Attrs = append(r.Attrs, a)
		}
		m.AddRelation(r)
	}
	for _, src := range x.Rules {
		rules, err := parser.ParseRules(src)
		if err != nil {
			return nil, fmt.Errorf("xmlio: rule %q: %w", src, err)
		}
		m.Rules = append(m.Rules, rules...)
	}
	for _, xc := range x.Constraints {
		switch xc.Kind {
		case "partialOrder":
			m.Constraints = append(m.Constraints, gcm.PartialOrder{Class: xc.Class, Rel: xc.Rel})
		case "keyMethod":
			m.Constraints = append(m.Constraints, gcm.KeyMethod{Class: xc.Class, Method: xc.Method})
		case "inclusion":
			m.Constraints = append(m.Constraints, gcm.Inclusion{Sub: xc.Sub, Super: xc.Super})
		default:
			return nil, fmt.Errorf("xmlio: unknown constraint kind %q", xc.Kind)
		}
	}
	for _, xo := range x.Objects {
		o := gcm.Object{ID: term.Atom(xo.ID), Class: xo.Class, Values: map[string][]term.Term{}}
		for _, xv := range xo.Values {
			v, err := decodeTerm(xv.Type, xv.V)
			if err != nil {
				return nil, err
			}
			o.Values[xv.Method] = append(o.Values[xv.Method], v)
		}
		m.AddObject(o)
	}
	for _, xt := range x.Tuples {
		args := make([]term.Term, len(xt.Args))
		for i, xa := range xt.Args {
			v, err := decodeTerm(xa.Type, xa.V)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		m.AddTuple(xt.Rel, args...)
	}
	return m, nil
}

// sortedKeys returns the sorted keys of a map with string keys.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

package xmlio

import "testing"

// FuzzReify asserts XML reification never panics and either errors or
// produces only ground facts.
func FuzzReify(f *testing.F) {
	for _, s := range []string{
		`<a/>`,
		`<cm name="x"><class name="c"/></cm>`,
		`<a x="1">text<b/><b y="2"/></a>`,
		`<a><b></a>`,
		``,
	} {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, doc []byte) {
		facts, err := Reify(doc)
		if err != nil {
			return
		}
		for _, r := range facts {
			if len(r.Body) != 0 {
				t.Fatalf("reify produced a non-fact rule: %s", r)
			}
			for _, a := range r.Head.Args {
				if !a.IsGround() {
					t.Fatalf("reify produced a non-ground fact: %s", r)
				}
			}
		}
	})
}

// FuzzDecodeModel asserts the GCMX decoder never panics, and that every
// accepted document yields a model that re-encodes.
func FuzzDecodeModel(f *testing.F) {
	seed, err := EncodeModel(buildModel())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`<cm name="m"><class name="c"><method name="m" result="string"/></class></cm>`))
	f.Add([]byte(`<cm name="m"><object id="o" class="c"><value method="m" type="int" v="3"/></object></cm>`))
	f.Fuzz(func(t *testing.T, doc []byte) {
		m, err := DecodeModel(doc)
		if err != nil {
			return
		}
		if _, err := EncodeModel(m); err != nil {
			t.Fatalf("accepted model failed to re-encode: %v", err)
		}
	})
}

package xmlio

import (
	"fmt"
	"strings"
)

// GCMXDTD is the document type definition of the GCMX exchange format —
// the paper frames structural mediation around "the names and possible
// nesting structure of XML elements as defined by an XML DTD"; this is
// GCMX's. Emitted for interoperability; ValidateGCMX enforces the same
// structure programmatically.
const GCMXDTD = `<!ELEMENT cm (class*, relation*, rule*, constraint*, object*, tuple*)>
<!ATTLIST cm name CDATA #REQUIRED format CDATA #IMPLIED>
<!ELEMENT class (super*, method*)>
<!ATTLIST class name CDATA #REQUIRED>
<!ELEMENT super EMPTY>
<!ATTLIST super name CDATA #REQUIRED>
<!ELEMENT method (derivation?)>
<!ATTLIST method name CDATA #REQUIRED result CDATA #REQUIRED
                 scalar (true|false) #IMPLIED anchor (true|false) #IMPLIED
                 context (true|false) #IMPLIED>
<!ELEMENT derivation (#PCDATA)>
<!ELEMENT relation (attr+)>
<!ATTLIST relation name CDATA #REQUIRED>
<!ELEMENT attr EMPTY>
<!ATTLIST attr name CDATA #REQUIRED class CDATA #REQUIRED
               min CDATA #IMPLIED max CDATA #IMPLIED card (true|false) #IMPLIED>
<!ELEMENT rule (#PCDATA)>
<!ELEMENT constraint EMPTY>
<!ATTLIST constraint kind (partialOrder|keyMethod|inclusion) #REQUIRED
                     class CDATA #IMPLIED rel CDATA #IMPLIED
                     method CDATA #IMPLIED sub CDATA #IMPLIED super CDATA #IMPLIED>
<!ELEMENT object (value*)>
<!ATTLIST object id CDATA #REQUIRED class CDATA #REQUIRED>
<!ELEMENT value EMPTY>
<!ATTLIST value method CDATA #REQUIRED type CDATA #REQUIRED v CDATA #REQUIRED>
<!ELEMENT tuple (arg+)>
<!ATTLIST tuple rel CDATA #REQUIRED>
<!ELEMENT arg EMPTY>
<!ATTLIST arg type CDATA #REQUIRED v CDATA #REQUIRED>
`

// gcmxSchema describes, per element, the allowed child elements and the
// required/optional attributes.
var gcmxSchema = map[string]struct {
	children map[string]bool
	required []string
	optional []string
}{
	"cm":         {children: set("class", "relation", "rule", "constraint", "object", "tuple"), required: []string{"name"}, optional: []string{"format"}},
	"class":      {children: set("super", "method"), required: []string{"name"}},
	"super":      {children: set(), required: []string{"name"}},
	"method":     {children: set("derivation"), required: []string{"name", "result"}, optional: []string{"scalar", "anchor", "context"}},
	"derivation": {children: set()},
	"relation":   {children: set("attr"), required: []string{"name"}},
	"attr":       {children: set(), required: []string{"name", "class"}, optional: []string{"min", "max", "card"}},
	"rule":       {children: set()},
	"constraint": {children: set(), required: []string{"kind"}, optional: []string{"class", "rel", "method", "sub", "super"}},
	"object":     {children: set("value"), required: []string{"id", "class"}},
	"value":      {children: set(), required: []string{"method", "type", "v"}},
	"tuple":      {children: set("arg"), required: []string{"rel"}},
	"arg":        {children: set(), required: []string{"type", "v"}},
}

func set(ss ...string) map[string]bool {
	m := make(map[string]bool, len(ss))
	for _, s := range ss {
		m[s] = true
	}
	return m
}

// ValidateGCMX checks that an XML document conforms to the GCMX
// structure: the root is <cm>, only declared child elements appear
// under each element, required attributes are present, and only
// declared attributes are used. It returns the first violation.
func ValidateGCMX(doc []byte) error {
	facts, err := Reify(doc)
	if err != nil {
		return err
	}
	tag := map[int64]string{}
	attrs := map[int64]map[string]bool{}
	parentOf := map[int64]int64{}
	var rootID int64 = -1
	for _, f := range facts {
		h := f.Head
		switch h.Pred {
		case PredElem:
			tag[h.Args[0].IntVal()] = h.Args[1].Name()
		case PredAttr:
			id := h.Args[0].IntVal()
			if attrs[id] == nil {
				attrs[id] = map[string]bool{}
			}
			attrs[id][h.Args[1].Name()] = true
		case PredChild:
			parentOf[h.Args[1].IntVal()] = h.Args[0].IntVal()
		case PredRoot:
			rootID = h.Args[0].IntVal()
		}
	}
	if rootID < 0 {
		return fmt.Errorf("xmlio: empty document")
	}
	if tag[rootID] != "cm" {
		return fmt.Errorf("xmlio: GCMX root must be <cm>, got <%s>", tag[rootID])
	}
	ids := make([]int64, 0, len(tag))
	for id := range tag {
		ids = append(ids, id)
	}
	for _, id := range ids {
		name := tag[id]
		spec, known := gcmxSchema[name]
		if !known {
			return fmt.Errorf("xmlio: element <%s> is not part of GCMX", name)
		}
		if p, hasParent := parentOf[id]; hasParent {
			pSpec := gcmxSchema[tag[p]]
			if !pSpec.children[name] {
				return fmt.Errorf("xmlio: <%s> may not appear inside <%s>", name, tag[p])
			}
		}
		have := attrs[id]
		for _, req := range spec.required {
			if !have[req] {
				return fmt.Errorf("xmlio: <%s> is missing required attribute %q", name, req)
			}
		}
		allowed := map[string]bool{}
		for _, a := range spec.required {
			allowed[a] = true
		}
		for _, a := range spec.optional {
			allowed[a] = true
		}
		for a := range have {
			if !allowed[a] {
				return fmt.Errorf("xmlio: <%s> has undeclared attribute %q", name, a)
			}
		}
	}
	return nil
}

// GCMXDoctype returns the document prefixed with an inline DOCTYPE
// declaration carrying the GCMX DTD.
func GCMXDoctype(doc []byte) []byte {
	var b strings.Builder
	b.WriteString("<?xml version=\"1.0\"?>\n<!DOCTYPE cm [\n")
	b.WriteString(GCMXDTD)
	b.WriteString("]>\n")
	b.Write(doc)
	return []byte(b.String())
}

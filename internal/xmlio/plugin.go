package xmlio

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"modelmed/internal/datalog"
	"modelmed/internal/parser"
)

// Plugin maps one foreign CM format, arriving as XML, to GCM core
// predicates. Rules range over the reified XML predicates; Exports lists
// the GCM predicate keys ("name/arity") the translation produces.
type Plugin struct {
	Format  string
	Rules   []datalog.Rule
	Exports []string
}

// gcmExports is the standard export set of a CM translation.
var gcmExports = []string{
	"instance/2", "subclass/2", "method/3", "methodinst/3",
	"rel/1", "relattr/4", "relinst/3",
}

// uxfSrc translates a UXF-like UML class-diagram exchange document:
//
//	<uxf>
//	  <class name="Neuron">
//	    <generalization parent="Cell"/>
//	    <attribute name="location" type="string"/>
//	  </class>
//	  <association name="has" from="Neuron" to="Compartment"/>
//	  <object id="n1" class="Neuron"><slot name="location" value="soma"/></object>
//	  <link association="has" from="n1" to="c1"/>
//	</uxf>
const uxfSrc = `
	uxf_class(E, C) :- xml_elem(E, class), xml_attr(E, name, C).
	instance(C, class) :- uxf_class(E, C).
	subclass(C, P) :- uxf_class(E, C), xml_child(E, G),
		xml_elem(G, generalization), xml_attr(G, parent, P).
	method(C, M, T) :- uxf_class(E, C), xml_child(E, A),
		xml_elem(A, attribute), xml_attr(A, name, M), xml_attr(A, type, T).
	rel(R) :- xml_elem(E, association), xml_attr(E, name, R).
	relattr(R, from, CF, 0) :- xml_elem(E, association), xml_attr(E, name, R),
		xml_attr(E, from, CF).
	relattr(R, to, CT, 1) :- xml_elem(E, association), xml_attr(E, name, R),
		xml_attr(E, to, CT).
	uxf_object(E, O) :- xml_elem(E, object), xml_attr(E, id, O).
	instance(O, C) :- uxf_object(E, O), xml_attr(E, class, C).
	methodinst(O, M, V) :- uxf_object(E, O), xml_child(E, S),
		xml_elem(S, slot), xml_attr(S, name, M), xml_attr(S, value, V).
	relinst(R, X, Y) :- xml_elem(E, link), xml_attr(E, association, R),
		xml_attr(E, from, X), xml_attr(E, to, Y).
`

// UXFPlugin returns the UXF-to-GCM translator.
func UXFPlugin() *Plugin {
	return &Plugin{Format: "uxf", Rules: parser.MustParseRules(uxfSrc), Exports: gcmExports}
}

// rdfSrc translates an RDF-like triple document:
//
//	<rdf>
//	  <triple s="Neuron" p="rdfs_subClassOf" o="Cell"/>
//	  <triple s="n1" p="rdf_type" o="Neuron"/>
//	  <triple s="location" p="rdfs_domain" o="Neuron"/>
//	  <triple s="location" p="rdfs_range" o="string"/>
//	  <triple s="n1" p="location" o="soma"/>
//	</rdf>
const rdfSrc = `
	triple(S, P, O) :- xml_elem(E, triple), xml_attr(E, s, S),
		xml_attr(E, p, P), xml_attr(E, o, O).
	subclass(S, O) :- triple(S, rdfs_subClassOf, O).
	instance(S, O) :- triple(S, rdf_type, O).
	method(C, P, R) :- triple(P, rdfs_domain, C), triple(P, rdfs_range, R).
	property(P) :- triple(P, rdfs_domain, C).
	methodinst(S, P, O) :- triple(S, P, O), P \= rdfs_subClassOf,
		P \= rdf_type, P \= rdfs_domain, P \= rdfs_range.
`

// RDFPlugin returns the RDF-to-GCM translator.
func RDFPlugin() *Plugin {
	return &Plugin{Format: "rdf", Rules: parser.MustParseRules(rdfSrc), Exports: gcmExports}
}

// gcmxPluginSrc translates the native GCMX format itself through the
// same machinery, so the mediator has exactly one ingestion path.
const gcmxPluginSrc = `
	gx_class(E, C) :- xml_elem(E, class), xml_attr(E, name, C).
	instance(C, class) :- gx_class(E, C).
	subclass(C, P) :- gx_class(E, C), xml_child(E, S),
		xml_elem(S, super), xml_attr(S, name, P).
	method(C, M, T) :- gx_class(E, C), xml_child(E, A),
		xml_elem(A, method), xml_attr(A, name, M), xml_attr(A, result, T).
	rel(R) :- xml_elem(E, relation), xml_attr(E, name, R).
	relattr(R, A, C, I) :- xml_elem(E, relation), xml_attr(E, name, R),
		xml_child(E, AE), xml_elem(AE, attr), xml_attr(AE, name, A),
		xml_attr(AE, class, C), xml_idx(AE, I).
	gx_object(E, O) :- xml_elem(E, object), xml_attr(E, id, O).
	instance(O, C) :- gx_object(E, O), xml_attr(E, class, C).
	methodinst(O, M, V) :- gx_object(E, O), xml_child(E, VE),
		xml_elem(VE, value), xml_attr(VE, method, M), xml_attr(VE, v, V).
`

// GCMXPlugin returns the native-format translator.
func GCMXPlugin() *Plugin {
	return &Plugin{Format: "gcmx", Rules: parser.MustParseRules(gcmxPluginSrc), Exports: gcmExports}
}

// Registry holds the installed CM plug-ins. It is safe for concurrent
// use; new formats can be plugged in at runtime, which is the point of
// the architecture.
type Registry struct {
	mu      sync.RWMutex
	plugins map[string]*Plugin
}

// NewRegistry returns a registry preloaded with the gcmx, uxf and rdf
// plug-ins.
func NewRegistry() *Registry {
	r := &Registry{plugins: make(map[string]*Plugin)}
	r.Register(GCMXPlugin())
	r.Register(UXFPlugin())
	r.Register(RDFPlugin())
	return r
}

// Register installs (or replaces) a plug-in.
func (r *Registry) Register(p *Plugin) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.plugins[p.Format] = p
}

// Formats returns the installed format names, sorted.
func (r *Registry) Formats() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.plugins))
	for f := range r.plugins {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// Translate reifies the XML document and runs the plug-in for the given
// format over it, returning the exported GCM facts.
func (r *Registry) Translate(format string, doc []byte) ([]datalog.Rule, error) {
	r.mu.RLock()
	p := r.plugins[format]
	r.mu.RUnlock()
	if p == nil {
		return nil, fmt.Errorf("xmlio: no plug-in for CM format %q (installed: %s)",
			format, strings.Join(r.Formats(), ", "))
	}
	facts, err := Reify(doc)
	if err != nil {
		return nil, err
	}
	e := datalog.NewEngine(nil)
	if err := e.AddRules(facts...); err != nil {
		return nil, err
	}
	if err := e.AddRules(p.Rules...); err != nil {
		return nil, err
	}
	res, err := e.Run()
	if err != nil {
		return nil, err
	}
	var out []datalog.Rule
	for _, key := range p.Exports {
		rel := res.Store.Rel(key)
		if rel == nil {
			continue
		}
		name := key[:strings.LastIndexByte(key, '/')]
		for _, row := range rel.SortedRows() {
			out = append(out, datalog.Fact(name, row...))
		}
	}
	return out, nil
}

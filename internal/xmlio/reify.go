// Package xmlio implements the XML transport layer of the mediator
// architecture (Section 2): every conceptual model crosses the wire in
// XML. It provides (i) GCMX, the native XML codec for GCM models, and
// (ii) the CM plug-in mechanism: an incoming XML document in a foreign
// CM format (a UXF-like UML exchange format, an RDF-like triple format)
// is reified into generic XML facts, and a *plug-in* — a rule program,
// standing in for the paper's "complex XML query that a source sends
// once to the mediator" — maps those facts to GCM core predicates. The
// mediator thus needs only a single GCM engine for arbitrary CMs.
package xmlio

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"modelmed/internal/datalog"
	"modelmed/internal/term"
)

// Reified XML predicates. Attribute values and text are reified as atoms
// so plug-in output joins directly with GCM facts.
const (
	PredElem  = "xml_elem"  // xml_elem(ID, Tag)
	PredAttr  = "xml_attr"  // xml_attr(ID, Key, Value)
	PredChild = "xml_child" // xml_child(Parent, Child)
	PredIdx   = "xml_idx"   // xml_idx(Child, Position)  (0-based among siblings)
	PredText  = "xml_text"  // xml_text(ID, Text)        (trimmed, non-empty only)
	PredRoot  = "xml_root"  // xml_root(ID)
)

// Reify parses an XML document into ground facts over the reified XML
// predicates. Element IDs are integers in document order.
func Reify(doc []byte) ([]datalog.Rule, error) {
	dec := xml.NewDecoder(bytes.NewReader(doc))
	var out []datalog.Rule
	type frame struct {
		id   int64
		kids int
	}
	var stack []frame
	next := int64(0)
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmlio: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			next++
			id := next
			out = append(out, datalog.Fact(PredElem, term.Int(id), term.Atom(t.Name.Local)))
			for _, a := range t.Attr {
				out = append(out, datalog.Fact(PredAttr, term.Int(id),
					term.Atom(a.Name.Local), term.Atom(a.Value)))
			}
			if len(stack) == 0 {
				out = append(out, datalog.Fact(PredRoot, term.Int(id)))
			} else {
				parent := &stack[len(stack)-1]
				out = append(out, datalog.Fact(PredChild, term.Int(parent.id), term.Int(id)))
				out = append(out, datalog.Fact(PredIdx, term.Int(id), term.Int(int64(parent.kids))))
				parent.kids++
			}
			stack = append(stack, frame{id: id})
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmlio: unbalanced end element %s", t.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) == 0 {
				continue
			}
			text := strings.TrimSpace(string(t))
			if text == "" {
				continue
			}
			id := stack[len(stack)-1].id
			out = append(out, datalog.Fact(PredText, term.Int(id), term.Atom(text)))
		}
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmlio: unterminated element")
	}
	return out, nil
}

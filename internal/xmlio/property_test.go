package xmlio

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"modelmed/internal/gcm"
	"modelmed/internal/term"
)

// randomModel builds a random valid conceptual model.
func randomModel(r *rand.Rand) *gcm.Model {
	m := gcm.NewModel(fmt.Sprintf("M%d", r.Intn(1000)))
	nClasses := 1 + r.Intn(5)
	var classNames []string
	for i := 0; i < nClasses; i++ {
		name := fmt.Sprintf("c%d", i)
		c := &gcm.Class{Name: name}
		// Supers reference earlier classes only (acyclic).
		if i > 0 && r.Intn(2) == 0 {
			c.Super = append(c.Super, classNames[r.Intn(i)])
		}
		nMethods := r.Intn(4)
		for j := 0; j < nMethods; j++ {
			c.Methods = append(c.Methods, gcm.MethodSig{
				Name:   fmt.Sprintf("m%d", j),
				Result: []string{"string", "integer", "float", "any"}[r.Intn(4)],
				Scalar: r.Intn(2) == 0,
				Anchor: r.Intn(4) == 0,
			})
		}
		m.AddClass(c)
		classNames = append(classNames, name)
	}
	if r.Intn(2) == 0 {
		m.AddRelation(&gcm.Relation{Name: "rel0", Attrs: []gcm.RelAttr{
			{Name: "a", Class: classNames[0], Card: gcm.Cardinality{Min: r.Intn(2), Max: r.Intn(3) - 1}},
			{Name: "b", Class: "string"},
		}})
		for i := 0; i < r.Intn(4); i++ {
			m.AddTuple("rel0", term.Atom(fmt.Sprintf("o%d", i)), term.Str(fmt.Sprintf("v%d", i)))
		}
	}
	nObjects := r.Intn(6)
	for i := 0; i < nObjects; i++ {
		cn := classNames[r.Intn(len(classNames))]
		o := gcm.Object{ID: term.Atom(fmt.Sprintf("o%d", i)), Class: cn,
			Values: map[string][]term.Term{}}
		c := m.Classes[cn]
		for _, sig := range c.Methods {
			if r.Intn(2) == 0 {
				continue
			}
			var v term.Term
			switch sig.Result {
			case "string":
				if r.Intn(2) == 0 {
					v = term.Atom(fmt.Sprintf("a%d", r.Intn(10)))
				} else {
					v = term.Str(fmt.Sprintf("s %d", r.Intn(10)))
				}
			case "integer":
				v = term.Int(int64(r.Intn(100) - 50))
			case "float":
				v = term.Float(float64(r.Intn(100)) / 4)
			default: // any
				v = term.Comp("f", term.Atom(fmt.Sprintf("a%d", r.Intn(5))), term.Int(int64(r.Intn(9))))
			}
			o.Values[sig.Name] = append(o.Values[sig.Name], v)
		}
		m.AddObject(o)
	}
	return m
}

// TestGCMXRoundTripProperty: encode/decode is the identity on random
// valid models.
func TestGCMXRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		m := randomModel(r)
		if err := m.Validate(); err != nil {
			t.Fatalf("trial %d: generator produced invalid model: %v", trial, err)
		}
		doc, err := EncodeModel(m)
		if err != nil {
			t.Fatalf("trial %d: encode: %v", trial, err)
		}
		m2, err := DecodeModel(doc)
		if err != nil {
			t.Fatalf("trial %d: decode: %v\n%s", trial, err, doc)
		}
		if m2.Name != m.Name {
			t.Fatalf("trial %d: name %q vs %q", trial, m2.Name, m.Name)
		}
		if !reflect.DeepEqual(normClasses(m), normClasses(m2)) {
			t.Fatalf("trial %d: classes differ", trial)
		}
		if len(m2.Objects) != len(m.Objects) {
			t.Fatalf("trial %d: object count %d vs %d", trial, len(m2.Objects), len(m.Objects))
		}
		for i := range m.Objects {
			a, b := m.Objects[i], m2.Objects[i]
			if !a.ID.Equal(b.ID) || a.Class != b.Class {
				t.Fatalf("trial %d: object %d identity differs", trial, i)
			}
			if len(a.Values) != len(b.Values) {
				t.Fatalf("trial %d: object %d value sets differ", trial, i)
			}
			for k, vs := range a.Values {
				if len(b.Values[k]) != len(vs) {
					t.Fatalf("trial %d: object %d method %s count differs", trial, i, k)
				}
				for j := range vs {
					if !vs[j].Equal(b.Values[k][j]) {
						t.Fatalf("trial %d: object %d method %s value %d: %v vs %v",
							trial, i, k, j, vs[j], b.Values[k][j])
					}
				}
			}
		}
		// Second encode must be byte-identical (canonical form).
		doc2, err := EncodeModel(m2)
		if err != nil {
			t.Fatal(err)
		}
		if string(doc) != string(doc2) {
			t.Fatalf("trial %d: encoding not canonical", trial)
		}
	}
}

func normClasses(m *gcm.Model) map[string]gcm.Class {
	out := map[string]gcm.Class{}
	for k, v := range m.Classes {
		out[k] = *v
	}
	return out
}

// TestReifyRoundTripStructure: reified facts reconstruct parent/child
// counts of the original document.
func TestReifyStructureCounts(t *testing.T) {
	r := rand.New(rand.NewSource(88))
	for trial := 0; trial < 20; trial++ {
		m := randomModel(r)
		doc, err := EncodeModel(m)
		if err != nil {
			t.Fatal(err)
		}
		facts, err := Reify(doc)
		if err != nil {
			t.Fatal(err)
		}
		elems, roots := 0, 0
		for _, f := range facts {
			switch f.Head.Pred {
			case PredElem:
				elems++
			case PredRoot:
				roots++
			}
		}
		if roots != 1 {
			t.Fatalf("trial %d: %d roots", trial, roots)
		}
		if elems < 1 {
			t.Fatalf("trial %d: no elements", trial)
		}
	}
}

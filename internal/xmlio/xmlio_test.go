package xmlio

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"modelmed/internal/datalog"
	"modelmed/internal/gcm"
	"modelmed/internal/parser"
	"modelmed/internal/term"
)

func parserParse(src string) ([]datalog.Rule, error) { return parser.ParseRules(src) }

func a(s string) term.Term { return term.Atom(s) }

func TestReifyBasics(t *testing.T) {
	doc := []byte(`<root x="1"><child>hello</child><child/></root>`)
	facts, err := Reify(doc)
	if err != nil {
		t.Fatal(err)
	}
	e := datalog.NewEngine(nil)
	if err := e.AddRules(facts...); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds(PredElem, term.Int(1), a("root")) {
		t.Error("root element missing")
	}
	if !res.Holds(PredRoot, term.Int(1)) {
		t.Error("xml_root missing")
	}
	if !res.Holds(PredAttr, term.Int(1), a("x"), a("1")) {
		t.Error("attribute missing")
	}
	if !res.Holds(PredChild, term.Int(1), term.Int(2)) {
		t.Error("child edge missing")
	}
	if !res.Holds(PredIdx, term.Int(2), term.Int(0)) || !res.Holds(PredIdx, term.Int(3), term.Int(1)) {
		t.Error("sibling positions wrong")
	}
	if !res.Holds(PredText, term.Int(2), a("hello")) {
		t.Error("text missing")
	}
}

func TestReifyErrors(t *testing.T) {
	if _, err := Reify([]byte(`<a><b></a>`)); err == nil {
		t.Error("mismatched tags should error")
	}
	if _, err := Reify([]byte(`<a>`)); err == nil {
		t.Error("unterminated element should error")
	}
}

func TestUXFPluginTranslation(t *testing.T) {
	doc := []byte(`
	<uxf>
	  <class name="neuron">
	    <attribute name="location" type="string"/>
	  </class>
	  <class name="purkinje_cell">
	    <generalization parent="neuron"/>
	  </class>
	  <association name="has" from="neuron" to="compartment"/>
	  <object id="n1" class="purkinje_cell">
	    <slot name="location" value="cerebellum"/>
	  </object>
	  <link association="has" from="n1" to="c1"/>
	</uxf>`)
	reg := NewRegistry()
	facts, err := reg.Translate("uxf", doc)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"subclass(purkinje_cell,neuron).":     true,
		"method(neuron,location,string).":     true,
		"instance(n1,purkinje_cell).":         true,
		"methodinst(n1,location,cerebellum).": true,
		"rel(has).":                           true,
		"relattr(has,from,neuron,0).":         true,
		"relattr(has,to,compartment,1).":      true,
		"relinst(has,n1,c1).":                 true,
		"instance(neuron,class).":             true,
		"instance(purkinje_cell,class).":      true,
	}
	got := map[string]bool{}
	for _, f := range facts {
		got[f.String()] = true
	}
	for w := range want {
		if !got[w] {
			t.Errorf("missing translated fact %s; got %v", w, got)
		}
	}
}

func TestRDFPluginTranslation(t *testing.T) {
	doc := []byte(`
	<rdf>
	  <triple s="neuron" p="rdfs_subClassOf" o="cell"/>
	  <triple s="n1" p="rdf_type" o="neuron"/>
	  <triple s="location" p="rdfs_domain" o="neuron"/>
	  <triple s="location" p="rdfs_range" o="string"/>
	  <triple s="n1" p="location" o="soma"/>
	</rdf>`)
	reg := NewRegistry()
	facts, err := reg.Translate("rdf", doc)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, f := range facts {
		got[f.String()] = true
	}
	for _, w := range []string{
		"subclass(neuron,cell).",
		"instance(n1,neuron).",
		"method(neuron,location,string).",
		"methodinst(n1,location,soma).",
	} {
		if !got[w] {
			t.Errorf("missing %s in %v", w, got)
		}
	}
	// Schema triples must not leak into methodinst.
	if got["methodinst(neuron,rdfs_subClassOf,cell)."] {
		t.Error("schema triple leaked into methodinst")
	}
}

func TestUnknownFormat(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Translate("xmi", []byte("<x/>")); err == nil || !strings.Contains(err.Error(), "no plug-in") {
		t.Errorf("err = %v", err)
	}
	if got := reg.Formats(); strings.Join(got, ",") != "gcmx,rdf,uxf" {
		t.Errorf("Formats = %v", got)
	}
}

func TestRuntimePluginRegistration(t *testing.T) {
	// The architecture's point: a new CM formalism is added by plugging
	// in a translator at runtime.
	reg := NewRegistry()
	custom := &Plugin{
		Format: "pairs",
		Rules: datalogRules(t, `
			subclass(A, B) :- xml_elem(E, pair), xml_attr(E, sub, A), xml_attr(E, super, B).
		`),
		Exports: []string{"subclass/2"},
	}
	reg.Register(custom)
	facts, err := reg.Translate("pairs", []byte(`<doc><pair sub="a" super="b"/></doc>`))
	if err != nil {
		t.Fatal(err)
	}
	if len(facts) != 1 || facts[0].String() != "subclass(a,b)." {
		t.Errorf("facts = %v", facts)
	}
}

func datalogRules(t *testing.T, src string) []datalog.Rule {
	t.Helper()
	rules, err := parserParse(src)
	if err != nil {
		t.Fatal(err)
	}
	return rules
}

func buildModel() *gcm.Model {
	m := gcm.NewModel("SYNAPSE")
	m.AddClass(&gcm.Class{Name: "compartment"})
	m.AddClass(&gcm.Class{Name: "neuron", Methods: []gcm.MethodSig{
		{Name: "name", Result: "string", Scalar: true},
		{Name: "location", Result: "string", Anchor: true},
	}})
	m.AddClass(&gcm.Class{Name: "spiny_neuron", Super: []string{"neuron"}})
	m.AddRelation(&gcm.Relation{Name: "has", Attrs: []gcm.RelAttr{
		{Name: "whole", Class: "neuron", Card: gcm.Exactly(1)},
		{Name: "part", Class: "compartment"},
	}})
	m.Constraints = append(m.Constraints,
		gcm.PartialOrder{Class: "compartment", Rel: "po"},
		gcm.KeyMethod{Class: "neuron", Method: "name"},
		gcm.Inclusion{Sub: "r1", Super: "r2"},
	)
	m.AddObject(gcm.Object{ID: term.Atom("n1"), Class: "spiny_neuron",
		Values: map[string][]term.Term{
			"name":     {term.Str("cell one")},
			"location": {term.Atom("purkinje_cell")},
		}})
	m.AddTuple("has", term.Atom("n1"), term.Atom("c1"))
	return m
}

func TestGCMXRoundTrip(t *testing.T) {
	m := buildModel()
	m.Rules = datalogRules(t, "named(X) :- methodinst(X, name, V).")
	doc, err := EncodeModel(m)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := DecodeModel(doc)
	if err != nil {
		t.Fatalf("DecodeModel: %v\ndoc:\n%s", err, doc)
	}
	if m2.Name != m.Name {
		t.Errorf("name = %s", m2.Name)
	}
	if !reflect.DeepEqual(m2.Classes, m.Classes) {
		t.Errorf("classes differ:\n%#v\n%#v", m2.Classes, m.Classes)
	}
	if !reflect.DeepEqual(m2.Relations, m.Relations) {
		t.Errorf("relations differ")
	}
	if !reflect.DeepEqual(m2.Constraints, m.Constraints) {
		t.Errorf("constraints differ: %#v vs %#v", m2.Constraints, m.Constraints)
	}
	if len(m2.Objects) != 1 || !m2.Objects[0].ID.Equal(term.Atom("n1")) {
		t.Errorf("objects differ: %#v", m2.Objects)
	}
	if !m2.Objects[0].Values["name"][0].Equal(term.Str("cell one")) {
		t.Error("string value lost its type")
	}
	if len(m2.Rules) != 1 || m2.Rules[0].String() != m.Rules[0].String() {
		t.Errorf("rules differ: %v", m2.Rules)
	}
	if len(m2.Tuples["has"]) != 1 {
		t.Errorf("tuples differ: %v", m2.Tuples)
	}
	if err := m2.Validate(); err != nil {
		t.Errorf("decoded model invalid: %v", err)
	}
}

func TestGCMXTermTypes(t *testing.T) {
	m := gcm.NewModel("typed")
	m.AddClass(&gcm.Class{Name: "c", Methods: []gcm.MethodSig{
		{Name: "i", Result: "integer"},
		{Name: "f", Result: "float"},
		{Name: "s", Result: "string"},
		{Name: "t", Result: "any"},
	}})
	m.AddObject(gcm.Object{ID: term.Atom("o"), Class: "c",
		Values: map[string][]term.Term{
			"i": {term.Int(-42)},
			"f": {term.Float(2.5)},
			"s": {term.Str("hi there")},
			"t": {term.Comp("f", term.Atom("a"), term.Int(1))},
		}})
	doc, err := EncodeModel(m)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := DecodeModel(doc)
	if err != nil {
		t.Fatal(err)
	}
	v := m2.Objects[0].Values
	if !v["i"][0].Equal(term.Int(-42)) || !v["f"][0].Equal(term.Float(2.5)) ||
		!v["s"][0].Equal(term.Str("hi there")) ||
		!v["t"][0].Equal(term.Comp("f", term.Atom("a"), term.Int(1))) {
		t.Errorf("typed values lost: %#v", v)
	}
}

func TestGCMXPluginIngestsEncodedModel(t *testing.T) {
	// The same GCMX document also flows through the generic plug-in
	// path, yielding GCM facts directly.
	doc, err := EncodeModel(buildModel())
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	facts, err := reg.Translate("gcmx", doc)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, f := range facts {
		got[f.String()] = true
	}
	for _, w := range []string{
		"subclass(spiny_neuron,neuron).",
		"method(neuron,location,string).",
		"instance(n1,spiny_neuron).",
	} {
		if !got[w] {
			t.Errorf("missing %s", w)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodeModel([]byte("not xml")); err == nil {
		t.Error("garbage should fail")
	}
	if _, err := DecodeModel([]byte(`<cm name="x"><constraint kind="bogus"/></cm>`)); err == nil {
		t.Error("unknown constraint kind should fail")
	}
	if _, err := DecodeModel([]byte(`<cm name="x"><rule>p(X :-</rule></cm>`)); err == nil {
		t.Error("bad rule text should fail")
	}
	if _, err := DecodeModel([]byte(`<cm name="x"><object id="o" class="c"><value method="m" type="int" v="zz"/></object></cm>`)); err == nil {
		t.Error("bad int should fail")
	}
}

func TestGCMXDerivationRoundTrip(t *testing.T) {
	m := gcm.NewModel("d")
	m.AddClass(&gcm.Class{Name: "c", Methods: []gcm.MethodSig{
		{Name: "density", Result: "float"},
		{Name: "klass", Result: "string",
			Derivation: "methodinst(O, klass, high) :- methodinst(O, density, D), D >= 2.0."},
	}})
	doc, err := EncodeModel(m)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := DecodeModel(doc)
	if err != nil {
		t.Fatal(err)
	}
	sig, ok := m2.Classes["c"].Method("klass")
	if !ok || sig.Derivation == "" {
		t.Fatalf("derivation lost: %#v", m2.Classes["c"].Methods)
	}
	if err := m2.Validate(); err != nil {
		t.Errorf("decoded derived model invalid: %v", err)
	}
}

func TestValidateGCMXAcceptsEncoded(t *testing.T) {
	doc, err := EncodeModel(buildModel())
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateGCMX(doc); err != nil {
		t.Errorf("encoded model should validate: %v", err)
	}
	// With the DOCTYPE prefix it still parses and validates.
	if err := ValidateGCMX(GCMXDoctype(doc)); err != nil {
		t.Errorf("doctyped document should validate: %v", err)
	}
}

func TestValidateGCMXRejections(t *testing.T) {
	bad := []struct {
		name string
		doc  string
		want string
	}{
		{"wrong root", `<uxf/>`, "root must be <cm>"},
		{"unknown element", `<cm name="x"><ghost/></cm>`, "not part of GCMX"},
		{"bad nesting", `<cm name="x"><value method="m" type="atom" v="a"/></cm>`, "may not appear inside"},
		{"missing attr", `<cm name="x"><class/></cm>`, "missing required attribute"},
		{"undeclared attr", `<cm name="x" bogus="1"/>`, "undeclared attribute"},
		{"empty", ``, "empty document"},
	}
	for _, c := range bad {
		err := ValidateGCMX([]byte(c.doc))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want %q", c.name, err, c.want)
		}
	}
}

// Property: every randomly generated model encodes to a valid GCMX
// document.
func TestValidateGCMXProperty(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	for trial := 0; trial < 30; trial++ {
		doc, err := EncodeModel(randomModel(r))
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidateGCMX(doc); err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, doc)
		}
	}
}

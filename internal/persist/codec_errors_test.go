package persist

// Targeted error-path cases for the codec: each crafted byte sequence
// drives one refusal branch the random corruption corpus only hits by
// luck. All failures must be typed (ErrCorrupt) — these are the
// branches that keep a hostile or trashed file from panicking or
// over-allocating the recovering process.

import (
	"errors"
	"testing"

	"modelmed/internal/term"
)

func wantCorrupt(t *testing.T, label string, err error) {
	t.Helper()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("%s: %v, want ErrCorrupt", label, err)
	}
}

func TestDecodeWALPayloadErrors(t *testing.T) {
	valid := encodeWALPayload(testRecord(1))

	// Unknown flag bits.
	bad := append([]byte{0x02}, valid[1:]...)
	_, err := decodeWALPayload(bad)
	wantCorrupt(t, "unknown flags", err)

	// Trailing bytes after a complete record.
	_, err = decodeWALPayload(append(append([]byte{}, valid...), 0x00))
	wantCorrupt(t, "trailing bytes", err)

	// Truncations through every field boundary.
	for n := 0; n < len(valid); n++ {
		if _, err := decodeWALPayload(valid[:n]); err == nil {
			t.Fatalf("payload prefix %d decoded", n)
		} else {
			wantCorrupt(t, "payload truncation", err)
		}
	}
}

func TestReadInlineTermErrors(t *testing.T) {
	// Unknown tag.
	var w wr
	w.byte(9)
	r := &rd{b: w.b}
	_, err := readInlineTerm(r, 0)
	wantCorrupt(t, "unknown tag", err)

	// Depth bomb: nested compounds one past the limit. Crafted by hand
	// (the writer never emits one — building it as a real term first
	// would just test the constructor).
	var deep wr
	for i := 0; i <= maxInlineDepth; i++ {
		deep.byte(tagCompound)
		deep.str("f")
		deep.uvarint(1)
	}
	deep.byte(tagInt)
	deep.varint(0)
	_, err = readInlineTerm(&rd{b: deep.b}, 0)
	wantCorrupt(t, "depth bomb", err)

	// Zero-arity compound (term.Comp would panic; the regression the
	// fuzzer found).
	var zero wr
	zero.byte(tagCompound)
	zero.str("f")
	zero.uvarint(0)
	_, err = readInlineTerm(&rd{b: zero.b}, 0)
	wantCorrupt(t, "zero-arity compound", err)

	// Arity past the cap, with enough trailing bytes that the count
	// guard alone does not reject it.
	var wide wr
	wide.byte(tagCompound)
	wide.str("f")
	wide.uvarint(maxArity + 1)
	wide.raw(make([]byte, 2*(maxArity+1)))
	_, err = readInlineTerm(&rd{b: wide.b}, 0)
	wantCorrupt(t, "oversized arity", err)

	// A deeply nested but in-limit term round-trips.
	tm := term.Int(7)
	for i := 0; i < 64; i++ {
		tm = term.Comp("f", tm)
	}
	var ok wr
	writeInlineTerm(&ok, tm)
	got, err := readInlineTerm(&rd{b: ok.b}, 0)
	if err != nil {
		t.Fatalf("64-deep term: %v", err)
	}
	if got.Key() != tm.Key() {
		t.Fatal("64-deep term did not round-trip")
	}
}

func TestReaderPrimitiveErrors(t *testing.T) {
	// String length past the remaining input: must refuse before
	// allocating.
	var w wr
	w.uvarint(1 << 40)
	if _, err := (&rd{b: w.b}).str(); err == nil {
		t.Fatal("huge string length accepted")
	} else {
		wantCorrupt(t, "huge string", err)
	}

	// Count guard: an element count that cannot fit the remaining
	// bytes at the stated minimum element size.
	var c wr
	c.uvarint(1000)
	c.raw(make([]byte, 10))
	if _, err := (&rd{b: c.b}).count(3); err == nil {
		t.Fatal("overlong count accepted")
	} else {
		wantCorrupt(t, "overlong count", err)
	}

	// u64 and varint off the end of the buffer.
	if _, err := (&rd{b: []byte{1, 2, 3}}).u64(); err == nil {
		t.Fatal("short u64 accepted")
	}
	if _, err := (&rd{b: []byte{0x80}}).varint(); err == nil {
		t.Fatal("dangling varint accepted")
	}
}

func TestDBDirAndMissingSizes(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.Dir() != dir {
		t.Fatalf("Dir() = %q, want %q", db.Dir(), dir)
	}
	if db.SnapshotSize() != 0 {
		t.Fatal("snapshot size nonzero before any save")
	}
}

// TestReadTermTableForwardRef: a table entry referencing itself (or a
// later index) must be refused — the children-before-parents layout is
// what makes decoding non-recursive and loop-free.
func TestReadTermTableForwardRef(t *testing.T) {
	var w wr
	w.uvarint(1)         // one entry
	w.byte(tagCompound)  // compound...
	w.str("f")           //
	w.uvarint(1)         // ...with one arg:
	w.uvarint(0)         // itself (index 0 is not yet defined)
	_, err := readTermTable(&rd{b: w.b})
	wantCorrupt(t, "self-referential table entry", err)
}

package persist

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"modelmed/internal/datalog"
	"modelmed/internal/term"
)

// testStore builds a store covering every term kind, including shared
// compound structure.
func testStore() *datalog.Store {
	s := datalog.NewStore()
	loc := term.Comp("loc", term.Atom("cerebellum"), term.Int(3))
	s.Insert("src_obj", []term.Term{term.Atom("alpha"), term.Atom("o1"), term.Atom("record")})
	s.Insert("src_val", []term.Term{term.Atom("alpha"), term.Atom("o1"), term.Atom("value"), term.Float(4.25)})
	s.Insert("src_val", []term.Term{term.Atom("alpha"), term.Atom("o1"), term.Atom("note"), term.Str("hi there")})
	s.Insert("src_val", []term.Term{term.Atom("alpha"), term.Atom("o1"), term.Atom("where"), loc})
	s.Insert("src_val", []term.Term{term.Atom("alpha"), term.Atom("o2"), term.Atom("where"), loc})
	s.Insert("big", []term.Term{term.Int(-9007199254740993), term.Int(1 << 40)})
	return s
}

func testSnapshot() *Snapshot {
	facts := datalog.NewStore()
	facts.Insert("src_obj", []term.Term{term.Atom("alpha"), term.Atom("o1"), term.Atom("record")})
	anchors := datalog.NewStore()
	anchors.Insert("anchor", []term.Term{term.Atom("alpha"), term.Atom("o1"), term.Atom("spine")})
	return &Snapshot{
		ProgramSig: "sig-1234",
		Store:      testStore(),
		Sources: []SourceState{
			{Name: "alpha", Version: 7, RuleSig: []string{"r(X) :- s(X)."}, Facts: facts, Anchors: anchors},
			{Name: "beta", Version: 0, RuleSig: nil, Facts: datalog.NewStore(), Anchors: datalog.NewStore()},
		},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	want := testSnapshot()
	got, err := DecodeSnapshot(EncodeSnapshot(want))
	if err != nil {
		t.Fatal(err)
	}
	if got.ProgramSig != want.ProgramSig {
		t.Fatalf("program sig %q != %q", got.ProgramSig, want.ProgramSig)
	}
	if !got.Store.Equal(want.Store) {
		t.Fatal("store did not round-trip")
	}
	if len(got.Sources) != len(want.Sources) {
		t.Fatalf("%d sources != %d", len(got.Sources), len(want.Sources))
	}
	for i, w := range want.Sources {
		g := got.Sources[i]
		if g.Name != w.Name || g.Version != w.Version {
			t.Fatalf("source %d: %s/%d != %s/%d", i, g.Name, g.Version, w.Name, w.Version)
		}
		if len(g.RuleSig) != len(w.RuleSig) {
			t.Fatalf("source %d rule sig %v != %v", i, g.RuleSig, w.RuleSig)
		}
		for j := range w.RuleSig {
			if g.RuleSig[j] != w.RuleSig[j] {
				t.Fatalf("source %d rule sig %v != %v", i, g.RuleSig, w.RuleSig)
			}
		}
		if !g.Facts.Equal(w.Facts) || !g.Anchors.Equal(w.Anchors) {
			t.Fatalf("source %d stores did not round-trip", i)
		}
	}
}

func testRecord(n int) *WALRecord {
	return &WALRecord{
		Source:  "alpha",
		Version: uint64(n),
		Adds: []datalog.Rule{
			datalog.Fact("src_val", term.Atom("alpha"), term.Atom("o1"), term.Atom("value"), term.Int(int64(n))),
		},
		Dels: []datalog.Rule{
			datalog.Fact("src_val", term.Atom("alpha"), term.Atom("o1"), term.Atom("value"), term.Int(int64(n-1))),
		},
		AnchorAdds: []datalog.Rule{
			datalog.Fact("anchor", term.Atom("alpha"), term.Comp("id", term.Int(int64(n))), term.Atom("spine")),
		},
	}
}

func sameFacts(a, b []datalog.Rule) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			return false
		}
	}
	return true
}

func TestWALRecordRoundTrip(t *testing.T) {
	want := testRecord(3)
	got, err := decodeWALPayload(encodeWALPayload(want))
	if err != nil {
		t.Fatal(err)
	}
	if got.Source != want.Source || got.Version != want.Version || got.Full != want.Full {
		t.Fatalf("header fields: %+v != %+v", got, want)
	}
	if !sameFacts(got.Adds, want.Adds) || !sameFacts(got.Dels, want.Dels) ||
		!sameFacts(got.AnchorAdds, want.AnchorAdds) || !sameFacts(got.AnchorDels, want.AnchorDels) {
		t.Fatalf("fact lists: %+v != %+v", got, want)
	}

	full := &WALRecord{Source: "beta", Full: true}
	got, err = decodeWALPayload(encodeWALPayload(full))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Full || got.Source != "beta" {
		t.Fatalf("full record: %+v", got)
	}
}

func TestDBLifecycle(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.LoadSnapshot(); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("empty dir: %v, want ErrNoSnapshot", err)
	}
	if err := db.SaveSnapshot(testSnapshot()); err != nil {
		t.Fatal(err)
	}
	if got, err := db.LoadSnapshot(); err != nil || got.ProgramSig != "sig-1234" {
		t.Fatalf("load after save: %v / %+v", err, got)
	}
	if db.SnapshotSize() <= 0 {
		t.Fatal("snapshot size not reported")
	}
	for i := 1; i <= 3; i++ {
		if err := db.AppendWAL(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	var got []uint64
	res, err := db.ReplayWAL(func(rec *WALRecord) error {
		got = append(got, rec.Version)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 3 || res.Truncated {
		t.Fatalf("replay: %+v", res)
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("replayed versions %v", got)
	}
	// Saving a snapshot resets the log.
	if err := db.SaveSnapshot(testSnapshot()); err != nil {
		t.Fatal(err)
	}
	res, err = db.ReplayWAL(func(*WALRecord) error { return nil })
	if err != nil || res.Records != 0 {
		t.Fatalf("replay after snapshot: %v %+v", err, res)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.AppendWAL(testRecord(9)); err == nil {
		t.Fatal("append after close succeeded")
	}
}

// TestDBReopenKeepsWAL checks that Open neither truncates nor rewrites
// an existing log, and that appends after a reopen extend it.
func TestDBReopenKeepsWAL(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AppendWAL(testRecord(1)); err != nil {
		t.Fatal(err)
	}
	db.Close()
	db, err = Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.AppendWAL(testRecord(2)); err != nil {
		t.Fatal(err)
	}
	res, err := db.ReplayWAL(func(*WALRecord) error { return nil })
	if err != nil || res.Records != 2 || res.Truncated {
		t.Fatalf("replay after reopen: %v %+v", err, res)
	}
}

// TestTornTailRepair cuts the log mid-record and checks that replay
// trusts the prefix, truncates the tail, and accepts new appends.
func TestTornTailRepair(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := db.AppendWAL(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	db.Close()
	path := filepath.Join(dir, "wal.bin")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	db, err = Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	res, err := db.ReplayWAL(func(*WALRecord) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 2 || !res.Truncated || !errors.Is(res.TailErr, ErrCorrupt) {
		t.Fatalf("torn replay: %+v (tail err %v)", res, res.TailErr)
	}
	// The tail is gone; the log accepts and retains a fresh record.
	if err := db.AppendWAL(testRecord(4)); err != nil {
		t.Fatal(err)
	}
	res, err = db.ReplayWAL(func(*WALRecord) error { return nil })
	if err != nil || res.Records != 3 || res.Truncated {
		t.Fatalf("replay after repair: %v %+v", err, res)
	}
}

// TestStaleTempSnapshotIgnored simulates a crash mid-save: a partial
// temp file next to a valid snapshot must be discarded, not adopted.
func TestStaleTempSnapshotIgnored(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.SaveSnapshot(testSnapshot()); err != nil {
		t.Fatal(err)
	}
	db.Close()
	if err := os.WriteFile(filepath.Join(dir, "snapshot.tmp"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	db, err = Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := os.Stat(filepath.Join(dir, "snapshot.tmp")); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("stale snapshot.tmp survived Open")
	}
	if got, err := db.LoadSnapshot(); err != nil || got.ProgramSig != "sig-1234" {
		t.Fatalf("snapshot after crash-mid-save: %v", err)
	}
}

// TestReplayFnError checks that a callback error aborts replay and is
// returned (the Full-marker path in recovery rides this).
func TestReplayFnError(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 1; i <= 2; i++ {
		if err := db.AppendWAL(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	sentinel := errors.New("stop")
	res, err := db.ReplayWAL(func(rec *WALRecord) error {
		if rec.Version == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("replay error: %v", err)
	}
	if res.Records != 1 {
		t.Fatalf("records before abort: %d", res.Records)
	}
}

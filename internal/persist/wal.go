package persist

// Write-ahead log format (wal.bin), version 1:
//
//	header:
//	  magic   [6]byte "MMWAL\x00"
//	  version uint16  little-endian, currently 1
//	records, back to back:
//	  length  uint32  little-endian payload length
//	  crc     uint32  little-endian, IEEE CRC-32 of the payload
//	  payload [length]byte
//
// Record payload (varints unless noted):
//
//	flags      byte    bit 0: Full (cache was rebuilt, not patched)
//	source     string
//	version    uvarint source data version after the change
//	adds       facts   effective source-level fact additions
//	dels       facts   effective source-level fact removals
//	anchorAdds facts
//	anchorDels facts
//
// Records are self-contained (terms inline, no shared table), so the
// log can be cut at any byte and the prefix of complete, checksummed
// records before the cut remains decodable. That is the recovery
// contract: a torn tail — a partial record written when the process
// died — is detected by the length/CRC frame and discarded; everything
// before it replays.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"modelmed/internal/datalog"
)

var walMagic = [6]byte{'M', 'M', 'W', 'A', 'L', 0}

const (
	walHeaderLen = 6 + 2
	walFrameLen  = 4 + 4
	// maxWALRecord bounds a single record payload; a corrupt length
	// field cannot force a larger allocation.
	maxWALRecord = 1 << 28
)

// WALRecord is one logged incremental-maintenance step: the effective
// source-level change that was applied to the mediator's snapshot and
// patched into the cache. Replaying the records of a log in order onto
// the snapshot they follow reproduces the exact store the process had
// when it died.
type WALRecord struct {
	Source  string
	Version uint64
	// Full marks a step that rebuilt the cache from live sources
	// instead of patching it. A Full record cannot be replayed — the
	// rebuilt state was never written to disk — so recovery stops and
	// reports the snapshot stale.
	Full bool
	// Adds and Dels are the effective ground-fact changes recorded in
	// the source's snapshot (post-dedup, pre-refcount: replay re-runs
	// the same shared-fact refcounting the live path ran).
	Adds, Dels []datalog.Rule
	// AnchorAdds and AnchorDels are anchor/3 changes from a refresh.
	AnchorAdds, AnchorDels []datalog.Rule
}

func walHeader() []byte {
	h := make([]byte, 0, walHeaderLen)
	h = append(h, walMagic[:]...)
	h = binary.LittleEndian.AppendUint16(h, FormatVersion)
	return h
}

// checkWALHeader validates the fixed header, returning ErrVersion for
// a well-formed header of another version and ErrCorrupt otherwise.
func checkWALHeader(b []byte) error {
	if len(b) < walHeaderLen {
		return corruptf("persist: wal header truncated (%d bytes)", len(b))
	}
	if string(b[:6]) != string(walMagic[:]) {
		return corruptf("persist: bad wal magic %q", b[:6])
	}
	if ver := binary.LittleEndian.Uint16(b[6:8]); ver != FormatVersion {
		return fmt.Errorf("persist: wal format version %d (reader supports %d): %w",
			ver, FormatVersion, ErrVersion)
	}
	return nil
}

func encodeWALPayload(rec *WALRecord) []byte {
	var w wr
	var flags byte
	if rec.Full {
		flags |= 1
	}
	w.byte(flags)
	w.str(rec.Source)
	w.uvarint(rec.Version)
	writeFacts(&w, rec.Adds)
	writeFacts(&w, rec.Dels)
	writeFacts(&w, rec.AnchorAdds)
	writeFacts(&w, rec.AnchorDels)
	return w.b
}

func decodeWALPayload(b []byte) (*WALRecord, error) {
	r := &rd{b: b}
	flags, err := r.byteVal()
	if err != nil {
		return nil, err
	}
	if flags&^1 != 0 {
		return nil, corruptf("persist: unknown wal record flags %#x", flags)
	}
	rec := &WALRecord{Full: flags&1 != 0}
	if rec.Source, err = r.str(); err != nil {
		return nil, err
	}
	if rec.Version, err = r.uvarint(); err != nil {
		return nil, err
	}
	if rec.Adds, err = readFacts(r); err != nil {
		return nil, err
	}
	if rec.Dels, err = readFacts(r); err != nil {
		return nil, err
	}
	if rec.AnchorAdds, err = readFacts(r); err != nil {
		return nil, err
	}
	if rec.AnchorDels, err = readFacts(r); err != nil {
		return nil, err
	}
	if r.remain() != 0 {
		return nil, corruptf("persist: %d trailing bytes in wal record", r.remain())
	}
	return rec, nil
}

// frameWALRecord renders a record with its length+CRC frame.
func frameWALRecord(rec *WALRecord) []byte {
	payload := encodeWALPayload(rec)
	out := make([]byte, 0, walFrameLen+len(payload))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	return append(out, payload...)
}

// scanWALRecords walks the framed records in b (which excludes the
// file header). It returns the decoded records of the longest valid
// prefix and the byte offset just past the last valid record; a
// non-nil tailErr describes why scanning stopped early (nil when every
// byte was consumed by valid records).
func scanWALRecords(b []byte) (recs []*WALRecord, goodOff int, tailErr error) {
	off := 0
	for off < len(b) {
		if len(b)-off < walFrameLen {
			return recs, off, corruptf("persist: torn wal frame at offset %d", off)
		}
		plen := int(binary.LittleEndian.Uint32(b[off : off+4]))
		crc := binary.LittleEndian.Uint32(b[off+4 : off+8])
		if plen > maxWALRecord {
			return recs, off, corruptf("persist: wal record length %d exceeds limit", plen)
		}
		if len(b)-off-walFrameLen < plen {
			return recs, off, corruptf("persist: torn wal record at offset %d", off)
		}
		payload := b[off+walFrameLen : off+walFrameLen+plen]
		if crc32.ChecksumIEEE(payload) != crc {
			return recs, off, corruptf("persist: wal record checksum mismatch at offset %d", off)
		}
		rec, err := decodeWALPayload(payload)
		if err != nil {
			return recs, off, err
		}
		recs = append(recs, rec)
		off += walFrameLen + plen
	}
	return recs, off, nil
}

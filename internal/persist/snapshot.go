package persist

// Snapshot file format (snapshot.bin), version 1:
//
//	magic   [6]byte  "MMSNAP"
//	version uint16   little-endian, currently 1
//	crc     uint32   little-endian, IEEE CRC-32 of the payload
//	length  uint64   little-endian payload length in bytes
//	payload [length]byte
//
// Payload layout (all integers varint unless noted):
//
//	programSig string          fingerprint of the rule program the
//	                           store was materialized under
//	termTable                  count + entries, children before parents
//	store                      the materialized store (EDB + derived)
//	sourceCount uvarint
//	per source, in name order:
//	  name     string
//	  version  uvarint         wrapper data version at pull time
//	  ruleSig  count + strings
//	  facts    store           ground facts the source contributed
//	  anchors  store           its anchor/3 facts
//
// The header is fixed-size so a version-skew check never depends on
// being able to parse a newer payload: readers reject any version
// other than 1 with ErrVersion before touching the payload.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"modelmed/internal/datalog"
)

// FormatVersion is the snapshot and WAL format version this package
// reads and writes.
const FormatVersion = 1

var snapMagic = [6]byte{'M', 'M', 'S', 'N', 'A', 'P'}

const snapHeaderLen = 6 + 2 + 4 + 8

// SourceState is the serializable image of one source's contribution
// to the materialization (the mediator's per-source snapshot).
type SourceState struct {
	Name    string
	Version uint64
	RuleSig []string
	Facts   *datalog.Store
	Anchors *datalog.Store
}

// Snapshot is the durable image of a materialized mediator: the full
// store plus the per-source states it was built from.
type Snapshot struct {
	// ProgramSig fingerprints the mediator-level rule program (domain
	// map, views, axioms). A reader whose program differs must discard
	// the snapshot: the derived facts in Store were computed under the
	// recorded program.
	ProgramSig string
	// Store holds every fact of the materialization, extensional and
	// derived.
	Store *datalog.Store
	// Sources holds the per-source states, sorted by name.
	Sources []SourceState
}

// EncodeSnapshot renders s into the version-1 file format, header
// included.
func EncodeSnapshot(s *Snapshot) []byte {
	tbl := newTermTable()
	var sig, stores wr
	sig.str(s.ProgramSig)
	writeStore(&stores, tbl, s.Store)
	stores.uvarint(uint64(len(s.Sources)))
	for _, src := range s.Sources {
		stores.str(src.Name)
		stores.uvarint(src.Version)
		stores.uvarint(uint64(len(src.RuleSig)))
		for _, r := range src.RuleSig {
			stores.str(r)
		}
		writeStore(&stores, tbl, src.Facts)
		writeStore(&stores, tbl, src.Anchors)
	}
	// Assemble: the term table is complete only after every store has
	// been walked, but decodes first.
	var payload wr
	payload.raw(sig.b)
	tbl.write(&payload)
	payload.raw(stores.b)

	out := make([]byte, 0, snapHeaderLen+len(payload.b))
	out = append(out, snapMagic[:]...)
	out = binary.LittleEndian.AppendUint16(out, FormatVersion)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload.b))
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload.b)))
	out = append(out, payload.b...)
	return out
}

// DecodeSnapshot parses a version-1 snapshot file. It returns
// ErrVersion (wrapped) for a well-formed header carrying a different
// format version, and ErrCorrupt (wrapped) for anything else that is
// not a byte-exact valid file: short header, bad magic, length or
// checksum mismatch, or a malformed payload.
func DecodeSnapshot(b []byte) (*Snapshot, error) {
	if len(b) < snapHeaderLen {
		return nil, corruptf("persist: snapshot header truncated (%d bytes)", len(b))
	}
	if string(b[:6]) != string(snapMagic[:]) {
		return nil, corruptf("persist: bad snapshot magic %q", b[:6])
	}
	ver := binary.LittleEndian.Uint16(b[6:8])
	if ver != FormatVersion {
		return nil, fmt.Errorf("persist: snapshot format version %d (reader supports %d): %w",
			ver, FormatVersion, ErrVersion)
	}
	crc := binary.LittleEndian.Uint32(b[8:12])
	plen := binary.LittleEndian.Uint64(b[12:20])
	if plen != uint64(len(b)-snapHeaderLen) {
		return nil, corruptf("persist: snapshot payload length %d, %d bytes present",
			plen, len(b)-snapHeaderLen)
	}
	payload := b[snapHeaderLen:]
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, corruptf("persist: snapshot checksum mismatch")
	}
	r := &rd{b: payload}
	sig, err := r.str()
	if err != nil {
		return nil, err
	}
	tbl, err := readTermTable(r)
	if err != nil {
		return nil, err
	}
	store, err := readStore(r, tbl)
	if err != nil {
		return nil, err
	}
	nSrc, err := r.count(3)
	if err != nil {
		return nil, err
	}
	srcs := make([]SourceState, 0, nSrc)
	for i := 0; i < nSrc; i++ {
		var st SourceState
		if st.Name, err = r.str(); err != nil {
			return nil, err
		}
		if st.Version, err = r.uvarint(); err != nil {
			return nil, err
		}
		nSig, err := r.count(1)
		if err != nil {
			return nil, err
		}
		for j := 0; j < nSig; j++ {
			s, err := r.str()
			if err != nil {
				return nil, err
			}
			st.RuleSig = append(st.RuleSig, s)
		}
		if st.Facts, err = readStore(r, tbl); err != nil {
			return nil, err
		}
		if st.Anchors, err = readStore(r, tbl); err != nil {
			return nil, err
		}
		srcs = append(srcs, st)
	}
	if r.remain() != 0 {
		return nil, corruptf("persist: %d trailing bytes after snapshot payload", r.remain())
	}
	return &Snapshot{ProgramSig: sig, Store: store, Sources: srcs}, nil
}

package persist

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// checkDecodeErr asserts that a decode outcome on damaged bytes is a
// typed refusal — ErrCorrupt or ErrVersion — never a silent success
// with different content, and (by virtue of running at all) no panic.
func checkDecodeErr(t *testing.T, label string, err error) {
	t.Helper()
	if err == nil {
		t.Fatalf("%s: damaged bytes decoded without error", label)
	}
	if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
		t.Fatalf("%s: untyped error %v", label, err)
	}
}

// TestSnapshotBitFlips flips every bit of an encoded snapshot and
// decodes: each flip must yield a typed error or decode to the exact
// original content (a flip inside slack the codec ignores does not
// exist — the format has no slack — but header-field flips that cancel
// out are tolerated only if content survives intact).
func TestSnapshotBitFlips(t *testing.T) {
	orig := EncodeSnapshot(testSnapshot())
	ref := testSnapshot()
	for i := range orig {
		for bit := 0; bit < 8; bit++ {
			mut := bytes.Clone(orig)
			mut[i] ^= 1 << bit
			snap, err := DecodeSnapshot(mut)
			if err == nil {
				// The CRC does not cover the 4 checksum bytes themselves,
				// so a flip there always fails; anywhere else success must
				// mean the content is untouched (never happens for a
				// 1-bit flip, but the invariant is what matters).
				if snap.ProgramSig != ref.ProgramSig || !snap.Store.Equal(ref.Store) {
					t.Fatalf("byte %d bit %d: silent corruption", i, bit)
				}
				continue
			}
			checkDecodeErr(t, "snapshot flip", err)
		}
	}
}

// TestSnapshotTruncations decodes every prefix of an encoded snapshot:
// all must be refused with a typed error.
func TestSnapshotTruncations(t *testing.T) {
	orig := EncodeSnapshot(testSnapshot())
	for n := 0; n < len(orig); n++ {
		_, err := DecodeSnapshot(orig[:n])
		checkDecodeErr(t, "snapshot truncation", err)
	}
	// Trailing garbage is also refused.
	if _, err := DecodeSnapshot(append(bytes.Clone(orig), 0)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing byte: %v, want ErrCorrupt", err)
	}
}

// corruptWAL builds a log of three records and returns its bytes.
func corruptWAL(t *testing.T) []byte {
	t.Helper()
	dir := t.TempDir()
	db, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := db.AppendWAL(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	db.Close()
	b, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestWALBitFlips flips every bit of a three-record log and recovers:
// replay must never panic, never yield more than three records, and
// any accepted record must decode to one of the three originals (the
// framing CRC rejects payload damage).
func TestWALBitFlips(t *testing.T) {
	orig := corruptWAL(t)
	want := make(map[string]bool)
	for i := 1; i <= 3; i++ {
		want[string(encodeWALPayload(testRecord(i)))] = true
	}
	for i := range orig {
		for bit := 0; bit < 8; bit++ {
			mut := bytes.Clone(orig)
			mut[i] ^= 1 << bit
			if err := checkWALHeader(mut); err != nil {
				checkDecodeErr(t, "wal header flip", err)
				continue
			}
			recs, goodOff, tailErr := scanWALRecords(mut[walHeaderLen:])
			if goodOff > len(mut)-walHeaderLen {
				t.Fatalf("byte %d bit %d: good offset %d past end", i, bit, goodOff)
			}
			if len(recs) > 3 {
				t.Fatalf("byte %d bit %d: %d records from a 3-record log", i, bit, len(recs))
			}
			if len(recs) < 3 && tailErr == nil {
				t.Fatalf("byte %d bit %d: lost records without a tail error", i, bit)
			}
			if tailErr != nil && !errors.Is(tailErr, ErrCorrupt) {
				t.Fatalf("byte %d bit %d: untyped tail error %v", i, bit, tailErr)
			}
			for _, rec := range recs {
				if !want[string(encodeWALPayload(rec))] {
					t.Fatalf("byte %d bit %d: silently altered record %+v", i, bit, rec)
				}
			}
		}
	}
}

// TestWALTruncations recovers from every prefix of a three-record log:
// each must replay a (possibly empty) prefix of the original records
// and flag the torn tail, mirroring what the crash harness checks at
// the mediator level.
func TestWALTruncations(t *testing.T) {
	orig := corruptWAL(t)
	for n := 0; n <= len(orig); n++ {
		if n >= walHeaderLen {
			if err := checkWALHeader(orig[:n]); err != nil {
				t.Fatalf("prefix %d: header invalid: %v", n, err)
			}
			recs, goodOff, tailErr := scanWALRecords(orig[walHeaderLen:n])
			if walHeaderLen+goodOff > n {
				t.Fatalf("prefix %d: good offset past prefix", n)
			}
			if tailErr == nil && walHeaderLen+goodOff != n {
				t.Fatalf("prefix %d: unflagged slack after %d", n, goodOff)
			}
			for j, rec := range recs {
				if got, wantB := encodeWALPayload(rec), encodeWALPayload(testRecord(j+1)); !bytes.Equal(got, wantB) {
					t.Fatalf("prefix %d: record %d altered", n, j)
				}
			}
		} else if err := checkWALHeader(orig[:n]); err == nil {
			t.Fatalf("prefix %d: short header accepted", n)
		}
	}
}

// TestCorruptSnapshotColdFallback exercises the end-to-end contract:
// a damaged snapshot file makes LoadSnapshot return a typed error that
// is not ErrNoSnapshot, which RestoreFromDB callers treat as a cold
// start — never a partial adoption.
func TestCorruptSnapshotColdFallback(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.SaveSnapshot(testSnapshot()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, snapFile)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := db.LoadSnapshot(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("load of damaged snapshot: %v, want ErrCorrupt", err)
	}
}

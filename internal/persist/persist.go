// Package persist is the durable store layer under the mediator: it
// snapshots a materialized store (plus the per-source states it was
// built from) to disk in a versioned, checksummed binary format, and
// keeps a write-ahead log of the incremental deltas applied since, so
// recovery is load-snapshot + replay-WAL-tail instead of re-pulling
// every source and re-running the fixpoint.
//
// Layout of a data directory:
//
//	snapshot.bin  the last full image (see snapshot.go for the format)
//	wal.bin       deltas applied since that image (see wal.go)
//
// Invariants:
//
//   - A snapshot is written to a temp file and renamed into place, so
//     snapshot.bin is always either the old or the new image, never a
//     torn mix.
//   - The WAL is reset only after the rename lands. A crash between
//     the two leaves WAL records whose changes the new snapshot
//     already contains; replay is idempotent at the source-fact level
//     (inserts and deletes of already-applied changes are no-ops), so
//     the double application converges to the same state.
//   - Replay trusts exactly the longest prefix of complete, CRC-valid
//     records and truncates the file to it, so a torn tail from a
//     crash mid-append is discarded once and appends continue from a
//     clean boundary.
package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

var (
	// ErrCorrupt marks on-disk state that failed structural or checksum
	// validation. Callers fall back to a full re-materialization.
	ErrCorrupt = errors.New("persist: corrupt data")
	// ErrVersion marks a well-formed header written by a different
	// format version.
	ErrVersion = errors.New("persist: unsupported format version")
	// ErrNoSnapshot reports that the data directory has no snapshot yet.
	ErrNoSnapshot = errors.New("persist: no snapshot")
)

const (
	snapFile    = "snapshot.bin"
	snapTmpFile = "snapshot.tmp"
	walFile     = "wal.bin"
)

// Options configures a DB.
type Options struct {
	// NoSync skips fsync on WAL appends and snapshot writes. Only for
	// benchmarks and tests; a crash can then lose the unsynced tail
	// (but never corrupt the prefix framing).
	NoSync bool
}

// DB manages one data directory: a snapshot file plus a WAL.
type DB struct {
	mu     sync.Mutex
	dir    string
	noSync bool
	wal    *os.File // append-only handle, positioned at end
}

// Open prepares dir (creating it if needed) and opens the WAL for
// appending. An existing WAL is kept as-is — Replay decides how much
// of it to trust. A stale snapshot temp file from an interrupted save
// is removed.
func Open(dir string, opts *Options) (*DB, error) {
	o := Options{}
	if opts != nil {
		o = *opts
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: open %s: %w", dir, err)
	}
	_ = os.Remove(filepath.Join(dir, snapTmpFile))
	wal, err := os.OpenFile(filepath.Join(dir, walFile), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: open wal: %w", err)
	}
	db := &DB{dir: dir, noSync: o.NoSync, wal: wal}
	st, err := wal.Stat()
	if err != nil {
		wal.Close()
		return nil, fmt.Errorf("persist: stat wal: %w", err)
	}
	if st.Size() == 0 {
		if err := db.resetWALLocked(); err != nil {
			wal.Close()
			return nil, err
		}
	} else if _, err := wal.Seek(0, 2); err != nil {
		wal.Close()
		return nil, fmt.Errorf("persist: seek wal: %w", err)
	}
	return db, nil
}

// Dir returns the data directory path.
func (db *DB) Dir() string { return db.dir }

// Close releases the WAL handle.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.wal == nil {
		return nil
	}
	err := db.wal.Close()
	db.wal = nil
	return err
}

// LoadSnapshot reads and validates the snapshot file. ErrNoSnapshot
// (wrapped) means the directory has no image yet; ErrCorrupt or
// ErrVersion (wrapped) mean the file cannot be trusted.
func (db *DB) LoadSnapshot() (*Snapshot, error) {
	b, err := os.ReadFile(filepath.Join(db.dir, snapFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("persist: %s: %w", db.dir, ErrNoSnapshot)
	}
	if err != nil {
		return nil, fmt.Errorf("persist: read snapshot: %w", err)
	}
	return DecodeSnapshot(b)
}

// SaveSnapshot atomically replaces the snapshot file with s and then
// resets the WAL: the new image subsumes every logged delta.
func (db *DB) SaveSnapshot(s *Snapshot) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	b := EncodeSnapshot(s)
	tmp := filepath.Join(db.dir, snapTmpFile)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("persist: save snapshot: %w", err)
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("persist: save snapshot: %w", err)
	}
	if !db.noSync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("persist: save snapshot: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: save snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(db.dir, snapFile)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: save snapshot: %w", err)
	}
	db.syncDir()
	return db.resetWALLocked()
}

// SnapshotSize reports the byte size of the current snapshot file (0
// if none exists).
func (db *DB) SnapshotSize() int64 {
	st, err := os.Stat(filepath.Join(db.dir, snapFile))
	if err != nil {
		return 0
	}
	return st.Size()
}

// AppendWAL frames rec, appends it to the log, and (unless NoSync)
// syncs the file so the record survives a crash.
func (db *DB) AppendWAL(rec *WALRecord) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.wal == nil {
		return fmt.Errorf("persist: append wal: db closed")
	}
	if _, err := db.wal.Write(frameWALRecord(rec)); err != nil {
		return fmt.Errorf("persist: append wal: %w", err)
	}
	if !db.noSync {
		if err := db.wal.Sync(); err != nil {
			return fmt.Errorf("persist: append wal: %w", err)
		}
	}
	return nil
}

// ReplayResult describes one WAL recovery pass.
type ReplayResult struct {
	// Records is the number of valid records replayed.
	Records int
	// Truncated reports that a torn or corrupt tail was discarded; the
	// file was cut back to the last valid record boundary. TailErr
	// says why (wrapping ErrCorrupt).
	Truncated bool
	TailErr   error
}

// ReplayWAL decodes the longest valid prefix of the log, invokes fn on
// each record in order, and truncates the file past the prefix so
// future appends continue from a clean boundary. An invalid or
// version-skewed header is treated as an empty log (total torn write)
// and reset. If fn returns an error, replay stops and that error is
// returned; the file is still repaired.
func (db *DB) ReplayWAL(fn func(*WALRecord) error) (*ReplayResult, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	path := filepath.Join(db.dir, walFile)
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("persist: read wal: %w", err)
	}
	res := &ReplayResult{}
	var recs []*WALRecord
	goodOff := 0
	if err := checkWALHeader(b); err != nil {
		res.Truncated = true
		res.TailErr = err
		if err := db.resetWALLocked(); err != nil {
			return nil, err
		}
	} else {
		var tailErr error
		recs, goodOff, tailErr = scanWALRecords(b[walHeaderLen:])
		if tailErr != nil {
			res.Truncated = true
			res.TailErr = tailErr
			if err := db.truncateWALLocked(int64(walHeaderLen + goodOff)); err != nil {
				return nil, err
			}
		}
	}
	for _, rec := range recs {
		if err := fn(rec); err != nil {
			return res, err
		}
		res.Records++
	}
	return res, nil
}

// resetWALLocked rewrites the log as empty (header only). Called with
// db.mu held.
func (db *DB) resetWALLocked() error {
	if db.wal == nil {
		return fmt.Errorf("persist: reset wal: db closed")
	}
	if err := db.wal.Truncate(0); err != nil {
		return fmt.Errorf("persist: reset wal: %w", err)
	}
	if _, err := db.wal.Seek(0, 0); err != nil {
		return fmt.Errorf("persist: reset wal: %w", err)
	}
	if _, err := db.wal.Write(walHeader()); err != nil {
		return fmt.Errorf("persist: reset wal: %w", err)
	}
	if !db.noSync {
		if err := db.wal.Sync(); err != nil {
			return fmt.Errorf("persist: reset wal: %w", err)
		}
	}
	return nil
}

// truncateWALLocked cuts the log back to off bytes (a record
// boundary), discarding a torn tail. Called with db.mu held.
func (db *DB) truncateWALLocked(off int64) error {
	if db.wal == nil {
		return fmt.Errorf("persist: truncate wal: db closed")
	}
	if err := db.wal.Truncate(off); err != nil {
		return fmt.Errorf("persist: truncate wal: %w", err)
	}
	if _, err := db.wal.Seek(off, 0); err != nil {
		return fmt.Errorf("persist: truncate wal: %w", err)
	}
	if !db.noSync {
		if err := db.wal.Sync(); err != nil {
			return fmt.Errorf("persist: truncate wal: %w", err)
		}
	}
	return nil
}

// syncDir best-effort fsyncs the directory so a rename is durable.
func (db *DB) syncDir() {
	if db.noSync {
		return
	}
	if d, err := os.Open(db.dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

package persist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestSnapshotGolden pins the v1 on-disk encoding byte-for-byte: any
// codec change that alters the bytes of an existing snapshot breaks
// warm restart across versions and must bump FormatVersion instead.
// Refresh intentionally with: go test ./internal/persist -run Golden -update
func TestSnapshotGolden(t *testing.T) {
	got := EncodeSnapshot(testSnapshot())
	path := filepath.Join("testdata", "snapshot_v1.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		i := 0
		for i < len(got) && i < len(want) && got[i] == want[i] {
			i++
		}
		t.Fatalf("encoding drifted from golden file at byte %d (got %d bytes, want %d); "+
			"bump FormatVersion or run -update if the change is intentional", i, len(got), len(want))
	}
	// The golden bytes must still decode to an equal snapshot.
	snap, err := DecodeSnapshot(want)
	if err != nil {
		t.Fatalf("golden bytes do not decode: %v", err)
	}
	ref := testSnapshot()
	if snap.ProgramSig != ref.ProgramSig || !snap.Store.Equal(ref.Store) || len(snap.Sources) != len(ref.Sources) {
		t.Fatal("golden bytes decode to a different snapshot")
	}
}

// TestSnapshotVersionSkew flips the header version to v2: a v1 reader
// must refuse it with ErrVersion (the caller falls back to a cold
// start), never misparse the payload.
func TestSnapshotVersionSkew(t *testing.T) {
	b := EncodeSnapshot(testSnapshot())
	v2 := bytes.Clone(b)
	binary.LittleEndian.PutUint16(v2[len(snapMagic):], FormatVersion+1)
	if _, err := DecodeSnapshot(v2); !errors.Is(err, ErrVersion) {
		t.Fatalf("v2 snapshot header: %v, want ErrVersion", err)
	}
	if errors.Is(dummyDecode(v2), ErrCorrupt) {
		t.Fatal("version skew must not be reported as corruption")
	}
}

func dummyDecode(b []byte) error {
	_, err := DecodeSnapshot(b)
	return err
}

// TestWALVersionSkew does the same for the log header: a v2 log is
// refused with ErrVersion and recovery treats it as unusable rather
// than replaying misframed records.
func TestWALVersionSkew(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AppendWAL(testRecord(1)); err != nil {
		t.Fatal(err)
	}
	db.Close()
	path := filepath.Join(dir, "wal.bin")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint16(b[len(walMagic):], FormatVersion+1)
	if err := checkWALHeader(b); !errors.Is(err, ErrVersion) {
		t.Fatalf("v2 wal header: %v, want ErrVersion", err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	db, err = Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// Replay refuses the foreign log wholesale: zero records, reset to
	// a fresh v1 header so subsequent appends are well-framed.
	res, err := db.ReplayWAL(func(*WALRecord) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 0 || !res.Truncated || !errors.Is(res.TailErr, ErrVersion) {
		t.Fatalf("v2 wal replay: %+v (tail err %v)", res, res.TailErr)
	}
	if err := db.AppendWAL(testRecord(2)); err != nil {
		t.Fatal(err)
	}
	res, err = db.ReplayWAL(func(*WALRecord) error { return nil })
	if err != nil || res.Records != 1 || res.Truncated {
		t.Fatalf("replay after reset: %v %+v", err, res)
	}
}

package persist

// Binary codec primitives for the durable store layer. Two encodings
// share one vocabulary of term tags:
//
//   - Table mode (snapshots): every distinct term is written once into
//     a term table, children before parents, and store rows reference
//     terms by table index. Interned uint32 IDs are process-local (the
//     intern table is rebuilt on every boot), so the table is the
//     portable stand-in for the intern space: load re-interns each
//     table entry once and rows remap through it.
//
//   - Inline mode (WAL records): terms are written recursively in
//     place. Records are small and self-contained, so sharing buys
//     nothing and independence from any table keeps each record
//     individually decodable.
//
// Every decoder is total: malformed input of any shape yields an error
// wrapping ErrCorrupt, never a panic and never a silently wrong value.
// All counts are validated against the bytes that remain, so a flipped
// length byte cannot force a huge allocation.

import (
	"encoding/binary"
	"fmt"
	"math"

	"modelmed/internal/datalog"
	"modelmed/internal/term"
)

// Term tags. The tag set mirrors term.Kind but is part of the on-disk
// format: do not renumber without bumping the format version.
const (
	tagAtom     = 0
	tagInt      = 1
	tagFloat    = 2
	tagString   = 3
	tagVar      = 4
	tagCompound = 5
)

const (
	// maxArity bounds relation and compound arities read from disk.
	maxArity = 1 << 12
	// maxInlineDepth bounds recursive inline term decoding (the engine
	// itself caps term depth far below this).
	maxInlineDepth = 512
)

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%s: %w", fmt.Sprintf(format, args...), ErrCorrupt)
}

// wr accumulates an encoded payload.
type wr struct {
	b []byte
}

func (w *wr) uvarint(v uint64)  { w.b = binary.AppendUvarint(w.b, v) }
func (w *wr) varint(v int64)    { w.b = binary.AppendVarint(w.b, v) }
func (w *wr) u64(v uint64)      { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *wr) byte(v byte)       { w.b = append(w.b, v) }
func (w *wr) raw(p []byte)      { w.b = append(w.b, p...) }
func (w *wr) str(s string) {
	w.uvarint(uint64(len(s)))
	w.b = append(w.b, s...)
}

// rd is a bounds-checked reader over an encoded payload.
type rd struct {
	b   []byte
	off int
}

func (r *rd) remain() int { return len(r.b) - r.off }

func (r *rd) bytes(n int) ([]byte, error) {
	if n < 0 || n > r.remain() {
		return nil, corruptf("persist: %d bytes wanted, %d remain", n, r.remain())
	}
	p := r.b[r.off : r.off+n]
	r.off += n
	return p, nil
}

func (r *rd) byteVal() (byte, error) {
	p, err := r.bytes(1)
	if err != nil {
		return 0, err
	}
	return p[0], nil
}

func (r *rd) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, corruptf("persist: bad uvarint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *rd) varint() (int64, error) {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		return 0, corruptf("persist: bad varint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *rd) u64() (uint64, error) {
	p, err := r.bytes(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(p), nil
}

func (r *rd) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(r.remain()) {
		return "", corruptf("persist: string length %d exceeds %d remaining bytes", n, r.remain())
	}
	p, err := r.bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(p), nil
}

// count reads an element count and validates it against the minimum
// encoded size of one element, so corrupt counts cannot drive huge
// allocations or long loops.
func (r *rd) count(minBytesPer int) (int, error) {
	n, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if minBytesPer < 1 {
		minBytesPer = 1
	}
	if n > uint64(r.remain()/minBytesPer) {
		return 0, corruptf("persist: count %d exceeds remaining input", n)
	}
	return int(n), nil
}

// termTable assigns dense indices to distinct terms during encoding.
// Compound arguments are emitted before the compound itself, so a
// decoder can resolve children by index as it goes.
type termTable struct {
	idx map[string]uint64
	enc wr
	n   uint64
}

func newTermTable() *termTable {
	return &termTable{idx: make(map[string]uint64)}
}

func (t *termTable) add(tm term.Term) uint64 {
	key := tm.Key()
	if i, ok := t.idx[key]; ok {
		return i
	}
	switch tm.Kind() {
	case term.KindAtom:
		t.enc.byte(tagAtom)
		t.enc.str(tm.Name())
	case term.KindInt:
		t.enc.byte(tagInt)
		t.enc.varint(tm.IntVal())
	case term.KindFloat:
		t.enc.byte(tagFloat)
		t.enc.u64(math.Float64bits(tm.FloatVal()))
	case term.KindString:
		t.enc.byte(tagString)
		t.enc.str(tm.Name())
	case term.KindVar:
		t.enc.byte(tagVar)
		t.enc.str(tm.Name())
	default: // compound: children first
		args := tm.Args()
		argIdx := make([]uint64, len(args))
		for i, a := range args {
			argIdx[i] = t.add(a)
		}
		t.enc.byte(tagCompound)
		t.enc.str(tm.Name())
		t.enc.uvarint(uint64(len(argIdx)))
		for _, ai := range argIdx {
			t.enc.uvarint(ai)
		}
	}
	i := t.n
	t.idx[key] = i
	t.n++
	return i
}

// write emits the completed table (count + entries) into w.
func (t *termTable) write(w *wr) {
	w.uvarint(t.n)
	w.raw(t.enc.b)
}

// readTermTable decodes a term table into a dense slice of terms.
func readTermTable(r *rd) ([]term.Term, error) {
	n, err := r.count(2) // smallest entry: tag + 1-byte payload
	if err != nil {
		return nil, err
	}
	tbl := make([]term.Term, 0, n)
	for i := 0; i < n; i++ {
		tag, err := r.byteVal()
		if err != nil {
			return nil, err
		}
		switch tag {
		case tagAtom:
			s, err := r.str()
			if err != nil {
				return nil, err
			}
			tbl = append(tbl, term.Atom(s))
		case tagInt:
			v, err := r.varint()
			if err != nil {
				return nil, err
			}
			tbl = append(tbl, term.Int(v))
		case tagFloat:
			v, err := r.u64()
			if err != nil {
				return nil, err
			}
			tbl = append(tbl, term.Float(math.Float64frombits(v)))
		case tagString:
			s, err := r.str()
			if err != nil {
				return nil, err
			}
			tbl = append(tbl, term.Str(s))
		case tagVar:
			s, err := r.str()
			if err != nil {
				return nil, err
			}
			tbl = append(tbl, term.Var(s))
		case tagCompound:
			functor, err := r.str()
			if err != nil {
				return nil, err
			}
			argc, err := r.count(1)
			if err != nil {
				return nil, err
			}
			if argc == 0 || argc > maxArity {
				return nil, corruptf("persist: compound arity %d out of range", argc)
			}
			args := make([]term.Term, argc)
			for j := range args {
				ai, err := r.uvarint()
				if err != nil {
					return nil, err
				}
				if ai >= uint64(len(tbl)) {
					return nil, corruptf("persist: term table entry %d references forward index %d", i, ai)
				}
				args[j] = tbl[ai]
			}
			tbl = append(tbl, term.Comp(functor, args...))
		default:
			return nil, corruptf("persist: unknown term tag %d", tag)
		}
	}
	return tbl, nil
}

// writeInlineTerm encodes one term recursively (WAL mode).
func writeInlineTerm(w *wr, tm term.Term) {
	switch tm.Kind() {
	case term.KindAtom:
		w.byte(tagAtom)
		w.str(tm.Name())
	case term.KindInt:
		w.byte(tagInt)
		w.varint(tm.IntVal())
	case term.KindFloat:
		w.byte(tagFloat)
		w.u64(math.Float64bits(tm.FloatVal()))
	case term.KindString:
		w.byte(tagString)
		w.str(tm.Name())
	case term.KindVar:
		w.byte(tagVar)
		w.str(tm.Name())
	default:
		w.byte(tagCompound)
		w.str(tm.Name())
		w.uvarint(uint64(len(tm.Args())))
		for _, a := range tm.Args() {
			writeInlineTerm(w, a)
		}
	}
}

func readInlineTerm(r *rd, depth int) (term.Term, error) {
	if depth > maxInlineDepth {
		return term.Term{}, corruptf("persist: term nesting exceeds %d", maxInlineDepth)
	}
	tag, err := r.byteVal()
	if err != nil {
		return term.Term{}, err
	}
	switch tag {
	case tagAtom:
		s, err := r.str()
		if err != nil {
			return term.Term{}, err
		}
		return term.Atom(s), nil
	case tagInt:
		v, err := r.varint()
		if err != nil {
			return term.Term{}, err
		}
		return term.Int(v), nil
	case tagFloat:
		v, err := r.u64()
		if err != nil {
			return term.Term{}, err
		}
		return term.Float(math.Float64frombits(v)), nil
	case tagString:
		s, err := r.str()
		if err != nil {
			return term.Term{}, err
		}
		return term.Str(s), nil
	case tagVar:
		s, err := r.str()
		if err != nil {
			return term.Term{}, err
		}
		return term.Var(s), nil
	case tagCompound:
		functor, err := r.str()
		if err != nil {
			return term.Term{}, err
		}
		argc, err := r.count(1)
		if err != nil {
			return term.Term{}, err
		}
		if argc == 0 || argc > maxArity {
			return term.Term{}, corruptf("persist: compound arity %d out of range", argc)
		}
		args := make([]term.Term, argc)
		for i := range args {
			args[i], err = readInlineTerm(r, depth+1)
			if err != nil {
				return term.Term{}, err
			}
		}
		return term.Comp(functor, args...), nil
	default:
		return term.Term{}, corruptf("persist: unknown term tag %d", tag)
	}
}

// writeStore encodes a fact store in table mode: relations in sorted
// key order, rows in insertion order, cells as term-table indices.
func writeStore(w *wr, tbl *termTable, s *datalog.Store) {
	keys := s.Keys()
	w.uvarint(uint64(len(keys)))
	for _, key := range keys {
		rel := s.Rel(key)
		w.str(key)
		w.uvarint(uint64(rel.Arity()))
		w.uvarint(uint64(rel.Len()))
	}
	// Rows follow the directory so arities are known up front.
	for _, key := range keys {
		rel := s.Rel(key)
		for _, row := range rel.Rows() {
			for _, cell := range row {
				w.uvarint(tbl.add(cell))
			}
		}
	}
}

func readStore(r *rd, tbl []term.Term) (*datalog.Store, error) {
	nRels, err := r.count(3) // key len + arity + row count
	if err != nil {
		return nil, err
	}
	type relDir struct {
		key   string
		arity int
		rows  int
	}
	dirs := make([]relDir, nRels)
	for i := range dirs {
		key, err := r.str()
		if err != nil {
			return nil, err
		}
		arity, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if arity == 0 || arity > maxArity {
			return nil, corruptf("persist: relation %s arity %d out of range", key, arity)
		}
		rows, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		// Each cell takes at least one byte.
		if rows > uint64(r.remain())/arity {
			return nil, corruptf("persist: relation %s row count %d exceeds remaining input", key, rows)
		}
		dirs[i] = relDir{key: key, arity: int(arity), rows: int(rows)}
	}
	out := datalog.NewStore()
	row := make([]term.Term, 0, 8)
	for _, d := range dirs {
		out.Ensure(d.key, d.arity)
		for i := 0; i < d.rows; i++ {
			row = row[:0]
			for j := 0; j < d.arity; j++ {
				ti, err := r.uvarint()
				if err != nil {
					return nil, err
				}
				if ti >= uint64(len(tbl)) {
					return nil, corruptf("persist: relation %s cell references term %d of %d", d.key, ti, len(tbl))
				}
				row = append(row, tbl[ti])
			}
			out.InsertKey(d.key, d.arity, row)
		}
	}
	return out, nil
}

// writeFacts encodes a fact list inline (WAL mode): each fact is a
// predicate name plus its ground argument terms.
func writeFacts(w *wr, facts []datalog.Rule) {
	w.uvarint(uint64(len(facts)))
	for _, f := range facts {
		w.str(f.Head.Pred)
		w.uvarint(uint64(len(f.Head.Args)))
		for _, a := range f.Head.Args {
			writeInlineTerm(w, a)
		}
	}
}

func readFacts(r *rd) ([]datalog.Rule, error) {
	n, err := r.count(2) // pred len + argc
	if err != nil {
		return nil, err
	}
	var out []datalog.Rule
	for i := 0; i < n; i++ {
		pred, err := r.str()
		if err != nil {
			return nil, err
		}
		argc, err := r.count(1)
		if err != nil {
			return nil, err
		}
		if argc > maxArity {
			return nil, corruptf("persist: fact arity %d exceeds %d", argc, maxArity)
		}
		args := make([]term.Term, argc)
		for j := range args {
			args[j], err = readInlineTerm(r, 0)
			if err != nil {
				return nil, err
			}
		}
		out = append(out, datalog.Fact(pred, args...))
	}
	return out, nil
}

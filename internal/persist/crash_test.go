package persist_test

// Crash-recovery harness for the durable store layer: a live mediator
// write-ahead logs a seeded mutation sequence, then the test simulates
// a crash at EVERY byte offset of the log — truncating the WAL file at
// each prefix, recovering a fresh process (fresh mediator, fresh
// wrappers, RestoreFromDB), and asserting the recovered store is
// set-equal to a from-scratch rebuild of the exact source state the
// surviving record prefix describes. This is the durability twin of
// internal/mediator/incr_diff_test.go: that harness proves incremental
// patching matches scratch materialization in a live process; this one
// proves the snapshot + replayed-WAL-prefix path matches it across a
// crash, at every possible torn-write point.

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"modelmed/internal/datalog"
	"modelmed/internal/gcm"
	"modelmed/internal/mediator"
	"modelmed/internal/persist"
	"modelmed/internal/sources"
	"modelmed/internal/term"
	"modelmed/internal/wrapper"
)

// crashConcepts and crashViews mirror the incremental differential
// harness (recursion via dm_down, stratified negation, aggregates), so
// replayed deltas flow through every evaluation feature.
var crashConcepts = []string{"cerebellum", "purkinje_cell", "dendrite", "spine", "soma"}

const crashViews = `
	covered(C) :- anchor(S, O, C).
	region(C) :- dm_down(has_a, cerebellum, C).
	bare(C) :- region(C), not covered(C).
	site_count(C, N) :- N = count{O[C]; anchor(S, O, C)}.
	site_total(C, T) :- T = sum{V[C] per O; anchor(S, O, C), src_val(S, O, value, V)}.
`

// crashWrappers builds the two-source federation at its seed state.
// The recovery side calls this again to get wrappers with identical
// rules (mutations only touch objects, never the schema), as a
// restarted process would re-create its source connections.
func crashWrappers(t *testing.T, seed int64) []*wrapper.InMemory {
	t.Helper()
	var ws []*wrapper.InMemory
	for i, name := range []string{"alpha", "beta"} {
		model := sources.MustSyntheticSource(name, seed+int64(i), 4, crashConcepts)
		w, err := wrapper.NewInMemory(model)
		if err != nil {
			t.Fatal(err)
		}
		ws = append(ws, w)
	}
	return ws
}

func crashMediator(t *testing.T, ws []*wrapper.InMemory) *mediator.Mediator {
	t.Helper()
	m := mediator.New(sources.NeuroDM(), nil)
	for _, w := range ws {
		if err := m.Register(w); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.DefineView(crashViews); err != nil {
		t.Fatal(err)
	}
	return m
}

// crashMutate applies one seeded object-level change to a model; the
// same op mix as the incremental harness (add/remove object, change
// value, move anchor).
func crashMutate(r *rand.Rand, name string, step int) func(m *gcm.Model) {
	return func(m *gcm.Model) {
		switch op := r.Intn(4); {
		case op == 0 || len(m.Objects) == 0:
			m.AddObject(gcm.Object{
				ID:    term.Atom(fmt.Sprintf("%s_x%d_%d", name, step, r.Intn(1000))),
				Class: "record",
				Values: map[string][]term.Term{
					"location": {term.Atom(crashConcepts[r.Intn(len(crashConcepts))])},
					"value":    {term.Float(float64(r.Intn(1000)) / 10)},
				},
			})
		case op == 1:
			i := r.Intn(len(m.Objects))
			m.Objects[i] = m.Objects[len(m.Objects)-1]
			m.Objects = m.Objects[:len(m.Objects)-1]
		case op == 2:
			o := m.Objects[r.Intn(len(m.Objects))]
			o.Values["value"] = []term.Term{term.Float(float64(r.Intn(1000)) / 10)}
		default:
			o := m.Objects[r.Intn(len(m.Objects))]
			o.Values["location"] = []term.Term{term.Atom(crashConcepts[r.Intn(len(crashConcepts))])}
		}
	}
}

// requireSetEqual fails with the first differing fact, like the
// incremental harness does.
func requireSetEqual(t *testing.T, label string, got, want *datalog.Store) {
	t.Helper()
	if got.Equal(want) {
		return
	}
	for _, k := range want.Keys() {
		for _, row := range want.Rel(k).Rows() {
			if !got.ContainsKey(k, row) {
				t.Fatalf("%s: missing fact %s%s", label, k, term.FormatTuple(row))
			}
		}
	}
	for _, k := range got.Keys() {
		for _, row := range got.Rel(k).Rows() {
			if !want.ContainsKey(k, row) {
				t.Fatalf("%s: extra fact %s%s", label, k, term.FormatTuple(row))
			}
		}
	}
	t.Fatalf("%s: stores differ", label)
}

// TestCrashRecoveryEveryWALOffset is the kill-at-every-offset harness.
//
// Live run: baseline snapshot, then 5 sync steps, each mutating one
// source and appending exactly one WAL record. After each record the
// harness captures (a) the WAL file size — the record boundary — and
// (b) a from-scratch materialization of the live wrappers: the ground
// truth a recovery surviving exactly that many records must reproduce.
//
// Crash run: for every byte offset T of the final WAL file, copy the
// baseline snapshot plus the first T bytes of the log into a fresh
// directory and recover. The number of replayed records must equal the
// number of complete records within T bytes, and the recovered store
// must be set-equal to the corresponding ground-truth store. Torn
// bytes past the last boundary must be discarded, never misapplied.
func TestCrashRecoveryEveryWALOffset(t *testing.T) {
	const seed = 23
	const steps = 5
	r := rand.New(rand.NewSource(seed))

	liveDir := t.TempDir()
	db, err := persist.Open(liveDir, &persist.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	ws := crashWrappers(t, seed)
	m := crashMediator(t, ws)
	if _, err := m.Materialize(); err != nil {
		t.Fatal(err)
	}
	if err := m.SaveSnapshotTo(db); err != nil {
		t.Fatal(err)
	}
	var walErr error
	m.SetDeltaLogger(func(rec *persist.WALRecord) {
		if err := db.AppendWAL(rec); err != nil && walErr == nil {
			walErr = err
		}
	})

	walPath := filepath.Join(liveDir, "wal.bin")
	walSize := func() int {
		st, err := os.Stat(walPath)
		if err != nil {
			t.Fatal(err)
		}
		return int(st.Size())
	}

	scratchStore := func() *datalog.Store {
		ref := crashMediator(t, ws)
		res, err := ref.Materialize()
		if err != nil {
			t.Fatal(err)
		}
		return res.Store
	}

	// boundaries[k] is the WAL size after k records; wantStores[k] the
	// ground-truth store for a recovery that replays exactly k records.
	boundaries := []int{walSize()}
	wantStores := []*datalog.Store{scratchStore()}
	for step := 0; step < steps; step++ {
		w := ws[r.Intn(len(ws))]
		w.Mutate(crashMutate(r, w.Name(), step))
		reps, err := m.SyncSources()
		if err != nil {
			t.Fatalf("step %d: sync: %v", step, err)
		}
		if walErr != nil {
			t.Fatalf("step %d: wal append: %v", step, walErr)
		}
		if len(reps) != 1 {
			t.Fatalf("step %d: %d sources refreshed, want 1", step, len(reps))
		}
		if reps[0].Full {
			t.Fatalf("step %d: source %s fell back to full rebuild", step, reps[0].Source)
		}
		if sz := walSize(); sz <= boundaries[len(boundaries)-1] {
			t.Fatalf("step %d: wal did not grow (%d -> %d)", step, boundaries[len(boundaries)-1], sz)
		}
		boundaries = append(boundaries, walSize())
		wantStores = append(wantStores, scratchStore())
	}
	db.Close()

	walBytes, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	snapBytes, err := os.ReadFile(filepath.Join(liveDir, "snapshot.bin"))
	if err != nil {
		t.Fatal(err)
	}

	// recordsWithin(T) = number of complete records in the first T bytes.
	recordsWithin := func(T int) int {
		k := 0
		for k+1 < len(boundaries) && boundaries[k+1] <= T {
			k++
		}
		return k
	}

	offsets := make([]int, 0, len(walBytes)+1)
	if testing.Short() {
		// Sample: around every record boundary plus the header region.
		seen := map[int]bool{}
		add := func(T int) {
			if T >= 0 && T <= len(walBytes) && !seen[T] {
				seen[T] = true
				offsets = append(offsets, T)
			}
		}
		for T := 0; T <= 9; T++ {
			add(T)
		}
		for _, b := range boundaries {
			for _, d := range []int{-9, -1, 0, 1, 4, 9} {
				add(b + d)
			}
		}
	} else {
		for T := 0; T <= len(walBytes); T++ {
			offsets = append(offsets, T)
		}
	}

	recDir := filepath.Join(t.TempDir(), "rec")
	for _, T := range offsets {
		if err := os.RemoveAll(recDir); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(recDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(recDir, "snapshot.bin"), snapBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(recDir, "wal.bin"), walBytes[:T], 0o644); err != nil {
			t.Fatal(err)
		}

		rdb, err := persist.Open(recDir, &persist.Options{NoSync: true})
		if err != nil {
			t.Fatalf("T=%d: open: %v", T, err)
		}
		rm := crashMediator(t, crashWrappers(t, seed))
		rep := rm.RestoreFromDB(rdb)
		if !rep.Restored {
			t.Fatalf("T=%d: not restored: %s", T, rep.Reason)
		}
		k := recordsWithin(T)
		if rep.Replayed != k {
			t.Fatalf("T=%d: replayed %d records, want %d", T, rep.Replayed, k)
		}
		res, err := rm.Materialize()
		if err != nil {
			t.Fatalf("T=%d: materialize after restore: %v", T, err)
		}
		requireSetEqual(t, fmt.Sprintf("T=%d (k=%d)", T, k), res.Store, wantStores[k])
		rdb.Close()
	}
}

// TestCrashBetweenSnapshotAndWALReset covers the rotation window: a
// crash after the new snapshot renames into place but before the WAL
// resets leaves a log whose records the snapshot already contains.
// Replay must be idempotent — recovery from snapshot(final) + full WAL
// equals recovery from snapshot(final) alone.
func TestCrashBetweenSnapshotAndWALReset(t *testing.T) {
	const seed = 31
	r := rand.New(rand.NewSource(seed))

	liveDir := t.TempDir()
	db, err := persist.Open(liveDir, &persist.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	ws := crashWrappers(t, seed)
	m := crashMediator(t, ws)
	if _, err := m.Materialize(); err != nil {
		t.Fatal(err)
	}
	if err := m.SaveSnapshotTo(db); err != nil {
		t.Fatal(err)
	}
	m.SetDeltaLogger(func(rec *persist.WALRecord) {
		if err := db.AppendWAL(rec); err != nil {
			t.Errorf("wal append: %v", err)
		}
	})
	for step := 0; step < 3; step++ {
		w := ws[r.Intn(len(ws))]
		w.Mutate(crashMutate(r, w.Name(), step))
		if _, err := m.SyncSources(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	wantRes, err := m.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	want := wantRes.Store

	walBytes, err := os.ReadFile(filepath.Join(liveDir, "wal.bin"))
	if err != nil {
		t.Fatal(err)
	}
	// Rotate the snapshot, then put the pre-rotation WAL back: exactly
	// the on-disk state of a crash between rename and reset.
	if err := m.SaveSnapshotTo(db); err != nil {
		t.Fatal(err)
	}
	db.Close()
	if err := os.WriteFile(filepath.Join(liveDir, "wal.bin"), walBytes, 0o644); err != nil {
		t.Fatal(err)
	}

	rdb, err := persist.Open(liveDir, &persist.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rdb.Close()
	rm := crashMediator(t, crashWrappers(t, seed))
	rep := rm.RestoreFromDB(rdb)
	if !rep.Restored {
		t.Fatalf("not restored: %s", rep.Reason)
	}
	if rep.Replayed == 0 {
		t.Fatal("expected stale records to replay (idempotently)")
	}
	res, err := rm.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	requireSetEqual(t, "post-rotation replay", res.Store, want)
}

package persist

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzWALDecode throws arbitrary bytes at the three decode surfaces a
// recovering process exposes to the disk — WAL payload decoding, WAL
// prefix scanning, and snapshot decoding. The contract under fuzzing:
// no panic, no unbounded allocation, and every accepted WAL payload
// survives a re-encode/decode cycle unchanged (semantic round-trip —
// byte-exact is too strong because varints have non-canonical forms a
// reader tolerates but a writer never emits).
func FuzzWALDecode(f *testing.F) {
	for i := 1; i <= 3; i++ {
		f.Add(encodeWALPayload(testRecord(i)))
	}
	f.Add(encodeWALPayload(&WALRecord{Source: "beta", Full: true}))
	// A framed log body and a full snapshot image as seeds.
	{
		var log []byte
		for i := 1; i <= 2; i++ {
			log = append(log, frameWALRecord(testRecord(i))...)
		}
		f.Add(log)
	}
	f.Add(EncodeSnapshot(testSnapshot()))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := decodeWALPayload(data)
		if err == nil {
			re := encodeWALPayload(rec)
			rec2, err := decodeWALPayload(re)
			if err != nil {
				t.Fatalf("re-encoded payload does not decode: %v", err)
			}
			if !bytes.Equal(encodeWALPayload(rec2), re) {
				t.Fatalf("payload round-trip mismatch:\n in  %x\n out %x", re, encodeWALPayload(rec2))
			}
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("untyped payload error: %v", err)
		}

		recs, goodOff, tailErr := scanWALRecords(data)
		if goodOff < 0 || goodOff > len(data) {
			t.Fatalf("scan offset %d out of [0,%d]", goodOff, len(data))
		}
		if tailErr != nil && !errors.Is(tailErr, ErrCorrupt) {
			t.Fatalf("untyped scan tail error: %v", tailErr)
		}
		for _, r := range recs {
			// Re-framing an accepted record must reproduce parseable bytes.
			if _, _, err := scanWALRecords(frameWALRecord(r)); err != nil {
				t.Fatalf("accepted record does not re-frame: %v", err)
			}
		}

		if _, err := DecodeSnapshot(data); err != nil &&
			!errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
			t.Fatalf("untyped snapshot error: %v", err)
		}
	})
}

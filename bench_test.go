// Benchmark harness: one benchmark per figure, table and example of
// "Model-Based Mediation with Domain Maps" (ICDE 2001), plus the
// quantitative comparisons and ablations DESIGN.md calls out. The paper
// has no quantitative evaluation section — its evaluation is the worked
// scenario — so the *shape* results here (who wins, by what factor) are
// recorded in EXPERIMENTS.md next to the functional reproductions.
package modelmed_test

import (
	"fmt"
	"testing"

	"modelmed/internal/baseline"
	"modelmed/internal/datalog"
	"modelmed/internal/dl"
	"modelmed/internal/domainmap"
	"modelmed/internal/flogic"
	"modelmed/internal/gcm"
	"modelmed/internal/mediator"
	"modelmed/internal/sources"
	"modelmed/internal/term"
	"modelmed/internal/wrapper"
	"modelmed/internal/xmlio"
)

// --- Figure 1: the SYNAPSE/NCMIR domain map and its DL reasoning ---

func BenchmarkFig1DomainMapBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dm := sources.NeuroDM()
		if !dm.HasConcept("spine") {
			b.Fatal("bad DM")
		}
	}
}

func BenchmarkFig1ContainmentReasoning(b *testing.B) {
	dm := sources.NeuroDM()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The paper's motivating chain: Purkinje cells have dendrites
		// that have branches that contain spines.
		if !dm.Reaches("has_a", "purkinje_cell", "spine") {
			b.Fatal("containment lost")
		}
	}
}

func BenchmarkFig1Subsumption(b *testing.B) {
	tb := sources.NeuroDM().TBox()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := tb.SubsumesNamed("neuron", "purkinje_cell")
		if err != nil || !ok {
			b.Fatal(ok, err)
		}
	}
}

// --- Figure 2: the registration architecture (XML wire + index) ---

func BenchmarkFig2Registration(b *testing.B) {
	for _, n := range []int{50, 500} {
		b.Run(fmt.Sprintf("records=%d", n), func(b *testing.B) {
			ws, err := sources.Wrappers(11, n, n, n/2)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := mediator.New(sources.NeuroDM(), nil)
				for _, w := range ws {
					if err := m.Register(w); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// --- Figure 3: runtime concept registration ---

func BenchmarkFig3ConceptRegistration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dm := sources.NeuroDM()
		if err := dm.AddAxioms(sources.Fig3Registration()...); err != nil {
			b.Fatal(err)
		}
		if got := dm.DC("proj", "my_neuron"); len(got) != 1 {
			b.Fatalf("definite projections = %v", got)
		}
	}
}

// --- Table 1: GCM <-> F-logic correspondence and axiom closure ---

func BenchmarkTable1RoundTrip(b *testing.B) {
	exprs := []flogic.GCMExpr{
		{Form: "instance", Args: []term.Term{term.Atom("x"), term.Atom("c")}},
		{Form: "subclass", Args: []term.Term{term.Atom("c1"), term.Atom("c2")}},
		{Form: "method", Args: []term.Term{term.Atom("c"), term.Atom("m"), term.Atom("d")}},
		{Form: "methodinst", Args: []term.Term{term.Atom("x"), term.Atom("m"), term.Atom("y")}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, e := range exprs {
			if _, err := flogic.ParseFL(e.ToFL()); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkTable1AxiomClosure(b *testing.B) {
	for _, depth := range []int{8, 64} {
		b.Run(fmt.Sprintf("chain=%d", depth), func(b *testing.B) {
			var facts []datalog.Rule
			for i := 0; i < depth; i++ {
				facts = append(facts, flogic.Subclass(
					term.Atom(fmt.Sprintf("c%d", i)), term.Atom(fmt.Sprintf("c%d", i+1))))
			}
			facts = append(facts, flogic.Instance(term.Atom("o"), term.Atom("c0")))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := datalog.NewEngine(nil)
				if err := e.AddRules(flogic.Axioms()...); err != nil {
					b.Fatal(err)
				}
				if err := e.AddRules(facts...); err != nil {
					b.Fatal(err)
				}
				res, err := e.Run()
				if err != nil {
					b.Fatal(err)
				}
				if !res.Holds("instance", term.Atom("o"), term.Atom(fmt.Sprintf("c%d", depth))) {
					b.Fatal("closure incomplete")
				}
			}
		})
	}
}

// --- Example 2: partial-order integrity constraints ---

func BenchmarkEx2PartialOrderCheck(b *testing.B) {
	for _, n := range []int{10, 40} {
		b.Run(fmt.Sprintf("elems=%d", n), func(b *testing.B) {
			m := gcm.NewModel("ex2")
			m.AddClass(&gcm.Class{Name: "c"})
			m.AddRelation(&gcm.Relation{Name: "po", Attrs: []gcm.RelAttr{
				{Name: "a", Class: "c"}, {Name: "b", Class: "c"}}})
			m.Constraints = append(m.Constraints, gcm.PartialOrder{Class: "c", Rel: "po"})
			// A clean chain order with full reflexive-transitive closure.
			for i := 0; i < n; i++ {
				m.AddObject(gcm.Object{ID: term.Atom(fmt.Sprintf("x%d", i)), Class: "c"})
				for j := i; j < n; j++ {
					m.AddTuple("po", term.Atom(fmt.Sprintf("x%d", i)), term.Atom(fmt.Sprintf("x%d", j)))
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := gcm.Check(m)
				if err != nil {
					b.Fatal(err)
				}
				if ws := gcm.Witnesses(res); len(ws) != 0 {
					b.Fatalf("unexpected witnesses %v", ws)
				}
			}
		})
	}
}

// --- Example 3: cardinality constraints via aggregation ---

func BenchmarkEx3Cardinality(b *testing.B) {
	for _, n := range []int{50, 400} {
		b.Run(fmt.Sprintf("tuples=%d", n), func(b *testing.B) {
			m := gcm.NewModel("ex3")
			m.AddClass(&gcm.Class{Name: "neuron"})
			m.AddClass(&gcm.Class{Name: "axon"})
			m.AddRelation(&gcm.Relation{Name: "has", Attrs: []gcm.RelAttr{
				{Name: "a", Class: "neuron", Card: gcm.Exactly(1)},
				{Name: "b", Class: "axon", Card: gcm.AtMost(2)},
			}})
			for i := 0; i < n; i++ {
				nid := term.Atom(fmt.Sprintf("n%d", i/2))
				xid := term.Atom(fmt.Sprintf("x%d", i))
				m.AddObject(gcm.Object{ID: xid, Class: "axon"})
				if i%2 == 0 {
					m.AddObject(gcm.Object{ID: nid, Class: "neuron"})
				}
				m.AddTuple("has", nid, xid)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := gcm.Check(m)
				if err != nil {
					b.Fatal(err)
				}
				if ws := gcm.Witnesses(res); len(ws) != 0 {
					b.Fatalf("unexpected witnesses %v", ws)
				}
			}
		})
	}
}

// --- Example 4: the protein_distribution view ---

func newScenario(b *testing.B, nSyn, nNcm, nSl int) *mediator.Mediator {
	return newScenarioWorkers(b, 0, nSyn, nNcm, nSl)
}

// newScenarioWorkers builds the scenario with an explicit engine worker
// count (0 = the GOMAXPROCS default).
func newScenarioWorkers(b *testing.B, workers, nSyn, nNcm, nSl int) *mediator.Mediator {
	b.Helper()
	var opts *mediator.Options
	if workers != 0 {
		opts = &mediator.Options{Engine: datalog.Options{Workers: workers}}
	}
	m := mediator.New(sources.NeuroDM(), opts)
	ws, err := sources.Wrappers(11, nSyn, nNcm, nSl)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range ws {
		if err := m.Register(w); err != nil {
			b.Fatal(err)
		}
	}
	if err := m.DefineStandardViews(); err != nil {
		b.Fatal(err)
	}
	return m
}

func BenchmarkEx4Materialize(b *testing.B) {
	for _, sz := range []struct {
		name string
		n    int
	}{{"100", 100}, {"400", 400}, {"large", 1600}} {
		n := sz.n
		b.Run("records="+sz.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				m := newScenario(b, n/2, n, n/4)
				b.StartTimer()
				if _, err := m.Materialize(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Parallel evaluation: serial vs worker-pool speedups ---

// parallelFixpointEngine builds a wide stratified program: width
// independent transitive closures over disjoint chains, which exercises
// both the per-round rule fan-out and the independent stratum groups.
func parallelFixpointEngine(b *testing.B, workers, width, chain int) *datalog.Engine {
	b.Helper()
	e := datalog.NewEngine(&datalog.Options{Workers: workers})
	for g := 0; g < width; g++ {
		edge := fmt.Sprintf("e%d", g)
		tc := fmt.Sprintf("t%d", g)
		for i := 0; i < chain; i++ {
			if err := e.AddFact(edge, term.Int(int64(i)), term.Int(int64(i+1))); err != nil {
				b.Fatal(err)
			}
		}
		if err := e.AddRules(
			datalog.NewRule(datalog.Lit(tc, term.Var("X"), term.Var("Y")),
				datalog.Lit(edge, term.Var("X"), term.Var("Y"))),
			datalog.NewRule(datalog.Lit(tc, term.Var("X"), term.Var("Y")),
				datalog.Lit(tc, term.Var("X"), term.Var("Z")),
				datalog.Lit(edge, term.Var("Z"), term.Var("Y"))),
		); err != nil {
			b.Fatal(err)
		}
	}
	return e
}

func BenchmarkParallelFixpoint(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				e := parallelFixpointEngine(b, workers, 8, 160)
				b.StartTimer()
				res, err := e.Run()
				if err != nil {
					b.Fatal(err)
				}
				if res.Store.Count("t0/2") != 160*161/2 {
					b.Fatal("closure incomplete")
				}
			}
		})
	}
}

func BenchmarkParallelMaterialize(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				m := newScenarioWorkers(b, workers, 200, 400, 100)
				b.StartTimer()
				if _, err := m.Materialize(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEx4ProteinDistribution(b *testing.B) {
	m := newScenario(b, 50, 200, 30)
	if _, err := m.Materialize(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ans, err := m.Query(
			`protein_distribution(cerebellum, "ryanodine_receptor", "rat", Total, N)`,
			"Total", "N")
		if err != nil {
			b.Fatal(err)
		}
		if len(ans.Rows) != 1 {
			b.Fatal("no distribution")
		}
	}
}

func BenchmarkEx4DistributionTree(b *testing.B) {
	m := newScenario(b, 50, 200, 30)
	if _, err := m.Materialize(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := m.DistributionOf("calbindin", "rat", "cerebellum")
		if err != nil {
			b.Fatal(err)
		}
		if d.Total().Count == 0 {
			b.Fatal("empty distribution")
		}
	}
}

// --- Section 5: the four-step query plan ---

func BenchmarkSec5QueryPlan(b *testing.B) {
	m := newScenario(b, 50, 200, 30)
	if _, err := m.Materialize(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := m.CalciumBindingProteinQuery("SENSELAB", "rat", "parallel_fiber", "calcium")
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Distributions) == 0 {
			b.Fatal("no distributions")
		}
	}
}

// --- Source selection: semantic index vs structural fan-out ---

func registerFleet(b *testing.B, med *mediator.Mediator, bl *baseline.Mediator, nSources int) {
	b.Helper()
	ws, err := sources.Wrappers(11, 10, 30, 10)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range ws {
		if med != nil {
			if err := med.Register(w); err != nil {
				b.Fatal(err)
			}
		}
		if bl != nil {
			if err := bl.Register(w); err != nil {
				b.Fatal(err)
			}
		}
	}
	// Irrelevant sources anchored away from the query concepts.
	for i := 0; i < nSources; i++ {
		src := sources.MustSyntheticSource(fmt.Sprintf("EXTRA%02d", i), int64(i), 30,
			[]string{"ca1", "dentate_gyrus", "neostriatum"})
		w, err := wrapper.NewInMemory(src)
		if err != nil {
			b.Fatal(err)
		}
		if med != nil {
			if err := med.Register(w); err != nil {
				b.Fatal(err)
			}
		}
		if bl != nil {
			if err := bl.Register(w); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkSourceSelectionSemanticIndex(b *testing.B) {
	for _, extra := range []int{5, 25, 100} {
		b.Run(fmt.Sprintf("sources=%d", extra+3), func(b *testing.B) {
			med := mediator.New(sources.NeuroDM(), nil)
			registerFleet(b, med, nil, extra)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got := med.SelectSourcesForPair("purkinje_cell", "dendrite", "SENSELAB")
				if len(got) != 1 {
					b.Fatalf("selected %v", got)
				}
			}
		})
	}
}

func BenchmarkSourceSelectionBaselineContactsAll(b *testing.B) {
	for _, extra := range []int{5, 25} {
		b.Run(fmt.Sprintf("sources=%d", extra+3), func(b *testing.B) {
			bl := baseline.New()
			registerFleet(b, nil, bl, extra)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := bl.ObjectValueQuery("location", "purkinje_cell"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Section 4 graph operations: closure scaling ---

func BenchmarkClosureDownNative(b *testing.B) {
	for _, cfg := range []struct{ d, f int }{{4, 3}, {6, 3}, {8, 2}} {
		dm := sources.MustSyntheticDM(cfg.d, cfg.f, 2)
		name := fmt.Sprintf("concepts=%d", len(dm.Concepts()))
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if got := dm.DownClosure("has_a", "root"); len(got) < 2 {
					b.Fatal("closure too small")
				}
			}
		})
	}
}

func BenchmarkClosureDatalogRoleStar(b *testing.B) {
	for _, cfg := range []struct{ d, f int }{{4, 3}, {6, 2}} {
		dm := sources.MustSyntheticDM(cfg.d, cfg.f, 1)
		name := fmt.Sprintf("concepts=%d", len(dm.Concepts()))
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := datalog.NewEngine(nil)
				if err := e.AddRules(dm.Facts()...); err != nil {
					b.Fatal(err)
				}
				if err := e.AddRules(dm.RoleFacts()...); err != nil {
					b.Fatal(err)
				}
				if err := e.AddRules(domainmap.ClosureRules()...); err != nil {
					b.Fatal(err)
				}
				if _, err := e.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkLUB(b *testing.B) {
	dm := sources.NeuroDM()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lub := dm.LUB("has_a", []string{"purkinje_cell", "dendrite", "spine"})
		if len(lub) == 0 || lub[0] != "purkinje_cell" {
			b.Fatalf("lub = %v", lub)
		}
	}
}

// --- Ablations ---

// BenchmarkAblationSemiNaive compares semi-naive and naive evaluation on
// transitive closure over a chain (the design choice in the engine).
func BenchmarkAblationSemiNaive(b *testing.B) {
	for _, naive := range []bool{false, true} {
		name := "seminaive"
		if naive {
			name = "naive"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := datalog.NewEngine(&datalog.Options{Naive: naive})
				for j := 0; j < 60; j++ {
					if err := e.AddFact("edge",
						term.Atom(fmt.Sprintf("n%d", j)), term.Atom(fmt.Sprintf("n%d", j+1))); err != nil {
						b.Fatal(err)
					}
				}
				if err := e.AddRules(
					datalog.NewRule(datalog.Lit("tc", term.Var("X"), term.Var("Y")),
						datalog.Lit("edge", term.Var("X"), term.Var("Y"))),
					datalog.NewRule(datalog.Lit("tc", term.Var("X"), term.Var("Y")),
						datalog.Lit("tc", term.Var("X"), term.Var("Z")),
						datalog.Lit("edge", term.Var("Z"), term.Var("Y"))),
				); err != nil {
					b.Fatal(err)
				}
				if _, err := e.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPushdown compares pushed-down selections against
// scan-and-filter at the mediator (the binding-pattern design choice).
func BenchmarkAblationPushdown(b *testing.B) {
	model := sources.NCMIR(7, 2000)
	pushW, err := wrapper.NewInMemory(model,
		wrapper.Capability{Target: "protein_amount", Kind: wrapper.CapClassSelect,
			Bindable: []string{"location"}})
	if err != nil {
		b.Fatal(err)
	}
	scanW, err := wrapper.NewInMemory(sources.NCMIR(7, 2000))
	if err != nil {
		b.Fatal(err)
	}
	sel := wrapper.Selection{Attr: "location", Value: term.Atom("spine")}
	b.Run("pushdown", func(b *testing.B) {
		med := mediator.New(sources.NeuroDM(), nil)
		if err := med.Register(pushW); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r, err := med.PushSelect("NCMIR", "protein_amount", sel)
			if err != nil || !r.Pushed {
				b.Fatal(err, r)
			}
		}
	})
	b.Run("scan-filter", func(b *testing.B) {
		med := mediator.New(sources.NeuroDM(), nil)
		if err := med.Register(scanW); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r, err := med.PushSelect("NCMIR", "protein_amount", sel)
			if err != nil || r.Pushed {
				b.Fatal(err, r)
			}
		}
	})
}

// BenchmarkAblationFlatVsRegion is the multiple-worlds payoff: the
// structural flat lookup vs the model-based region aggregation (what
// each one *finds* is checked in the baseline tests; here we measure
// what each one *costs*).
func BenchmarkAblationFlatVsRegion(b *testing.B) {
	ws, err := sources.Wrappers(11, 20, 150, 20)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("structural-flat", func(b *testing.B) {
		bl := baseline.New()
		for _, w := range ws {
			if err := bl.Register(w); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := bl.FlatAmountSum("calbindin", "rat", "purkinje_cell"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("model-based-region", func(b *testing.B) {
		med := mediator.New(sources.NeuroDM(), nil)
		for _, w := range ws {
			if err := med.Register(w); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := med.Materialize(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := med.DistributionOf("calbindin", "rat", "purkinje_cell"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- XML wire and plug-ins ---

func BenchmarkXMLWireRoundTrip(b *testing.B) {
	m := sources.NCMIR(7, 300)
	w, err := wrapper.NewInMemory(m)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, doc, err := w.ExportCM()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := xmlio.DecodeModel(doc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDLTranslation measures the axioms-to-rules compiler.
func BenchmarkDLTranslation(b *testing.B) {
	axioms := sources.NeuroDM().Axioms()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := dl.Translate(axioms, dl.ModeAssertion)
		if len(tr.Rules) == 0 {
			b.Fatal("no rules")
		}
	}
}

// BenchmarkPlannerVsFull compares the planned execution (semantic-index
// pruning + pushdown partial materialization) against full
// materialization for a selective query, at growing fleet sizes.
func BenchmarkPlannerVsFull(b *testing.B) {
	build := func(extra int) *mediator.Mediator {
		m := newScenario(b, 20, 100, 20)
		for i := 0; i < extra; i++ {
			src := sources.MustSyntheticSource(fmt.Sprintf("EX%02d", i), int64(i), 50,
				[]string{"ca1", "dentate_gyrus"})
			w, err := wrapper.NewInMemory(src)
			if err != nil {
				b.Fatal(err)
			}
			if err := m.Register(w); err != nil {
				b.Fatal(err)
			}
		}
		return m
	}
	const q = `
		src_obj('NCMIR', O, protein_amount),
		src_val('NCMIR', O, location, spine),
		src_val('NCMIR', O, amount, A)`
	for _, extra := range []int{0, 10} {
		m := build(extra)
		b.Run(fmt.Sprintf("planned/extra=%d", extra), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ans, _, err := m.PlannedQuery(q, "O", "A")
				if err != nil || len(ans.Rows) == 0 {
					b.Fatal(err, len(ans.Rows))
				}
			}
		})
		m2 := build(extra)
		b.Run(fmt.Sprintf("full/extra=%d", extra), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				m2.DefineView(fmt.Sprintf("cachebust%d(x) :- dm_concept(x).", i)) // invalidate cache
				b.StartTimer()
				ans, err := m2.Query(q, "O", "A")
				if err != nil || len(ans.Rows) == 0 {
					b.Fatal(err, len(ans.Rows))
				}
			}
		})
	}
}

func BenchmarkConsistencyCheck(b *testing.B) {
	m := newScenario(b, 30, 100, 30)
	if _, err := m.Materialize(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := m.CheckConsistency(false)
		if err != nil || !rep.Consistent() {
			b.Fatal(err, rep)
		}
	}
}

func BenchmarkExplain(b *testing.B) {
	m := newScenario(b, 10, 50, 20)
	if _, err := m.Materialize(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := m.Explain("dm_dc",
			term.Atom("has_a"), term.Atom("purkinje_cell"), term.Atom("compartment"))
		if err != nil || d == nil {
			b.Fatal(err)
		}
	}
}

module modelmed

go 1.22

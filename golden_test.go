package modelmed_test

// Golden-file tests pinning the paper-facing surfaces: the rendered
// output of Examples 1-4, the Table 1 F-logic <-> GCM/Datalog
// compilation, and the shape of the Section 5 query plan. Regenerate
// with:
//
//	go test -run Golden -update .
//
// and review the testdata/*.golden diff like any other code change.

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"modelmed/internal/flogic"
	"modelmed/internal/gcm"
	"modelmed/internal/mediator"
	"modelmed/internal/sources"
	"modelmed/internal/term"
)

var update = flag.Bool("update", false, "rewrite testdata/*.golden files")

// checkGolden compares got against testdata/<name>.golden, rewriting
// the file under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (run `go test -run Golden -update .` to create)", err)
	}
	if got != string(want) {
		t.Errorf("%s mismatch (re-run with -update and review the diff)\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}

// goldenMediator is the deterministic paper scenario shared by the
// example and plan goldens.
func goldenMediator(t *testing.T) *mediator.Mediator {
	t.Helper()
	m := mediator.New(sources.NeuroDM(), nil)
	ws, err := sources.Wrappers(2026, 30, 60, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range ws {
		if err := m.Register(w); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.DefineStandardViews(); err != nil {
		t.Fatal(err)
	}
	return m
}

func formatRows(ans *mediator.Answer) string {
	lines := make([]string, 0, len(ans.Rows))
	for _, row := range ans.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		lines = append(lines, "  "+strings.Join(parts, " "))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TestGoldenExamples pins the rendered output of the paper's four
// examples over the seeded scenario.
func TestGoldenExamples(t *testing.T) {
	var b strings.Builder
	m := goldenMediator(t)

	// Example 1: loose federation — SYNAPSE and NCMIR correlate through
	// the domain map although their schemas share nothing.
	b.WriteString("== Example 1: cross-world correlation through the domain map ==\n")
	ans, err := m.Query(`
		anchor('SYNAPSE', O1, C1),
		anchor('NCMIR', O2, C2),
		dm_down(has_a, C1, C2),
		C1 \= C2`, "C1", "C2")
	if err != nil {
		t.Fatal(err)
	}
	pairs := map[string]bool{}
	for _, row := range ans.Rows {
		pairs[fmt.Sprintf("  %s contains %s", row[0].Name(), row[1].Name())] = true
	}
	keys := make([]string, 0, len(pairs))
	for k := range pairs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b.WriteString(strings.Join(keys, "\n") + "\n")

	// Example 2: partial-order integrity constraints with seeded
	// violations of reflexivity, transitivity and antisymmetry.
	b.WriteString("\n== Example 2: partial-order constraint witnesses ==\n")
	ex2 := gcm.NewModel("ex2")
	ex2.AddClass(&gcm.Class{Name: "c"})
	ex2.AddRelation(&gcm.Relation{Name: "po", Attrs: []gcm.RelAttr{
		{Name: "a", Class: "c"}, {Name: "b", Class: "c"}}})
	ex2.Constraints = append(ex2.Constraints, gcm.PartialOrder{Class: "c", Rel: "po"})
	for _, x := range []string{"x", "y", "z"} {
		ex2.AddObject(gcm.Object{ID: term.Atom(x), Class: "c"})
	}
	ex2.AddTuple("po", term.Atom("x"), term.Atom("x"))
	ex2.AddTuple("po", term.Atom("x"), term.Atom("y"))
	ex2.AddTuple("po", term.Atom("y"), term.Atom("z"))
	ex2.AddTuple("po", term.Atom("y"), term.Atom("x"))
	res2, err := gcm.Check(ex2)
	if err != nil {
		t.Fatal(err)
	}
	var wlines []string
	for _, w := range gcm.Witnesses(res2) {
		wlines = append(wlines, "  "+w.String())
	}
	sort.Strings(wlines)
	b.WriteString(strings.Join(wlines, "\n") + "\n")

	// Example 3: cardinality constraints — a neuron has at most 2
	// axons, an axon sits in exactly one neuron.
	b.WriteString("\n== Example 3: cardinality constraint witnesses ==\n")
	ex3 := gcm.NewModel("ex3")
	ex3.AddClass(&gcm.Class{Name: "neuron"})
	ex3.AddClass(&gcm.Class{Name: "axon"})
	ex3.AddRelation(&gcm.Relation{Name: "has", Attrs: []gcm.RelAttr{
		{Name: "a", Class: "neuron", Card: gcm.Exactly(1)},
		{Name: "b", Class: "axon", Card: gcm.AtMost(2)},
	}})
	for _, n := range []string{"n1", "n2"} {
		ex3.AddObject(gcm.Object{ID: term.Atom(n), Class: "neuron"})
	}
	for _, x := range []string{"x1", "x2", "x3", "x4", "x5"} {
		ex3.AddObject(gcm.Object{ID: term.Atom(x), Class: "axon"})
	}
	for _, p := range [][2]string{{"n1", "x1"}, {"n1", "x2"}, {"n1", "x3"}, {"n2", "x1"}, {"n2", "x4"}} {
		ex3.AddTuple("has", term.Atom(p[0]), term.Atom(p[1]))
	}
	res3, err := gcm.Check(ex3)
	if err != nil {
		t.Fatal(err)
	}
	wlines = wlines[:0]
	for _, w := range gcm.Witnesses(res3) {
		wlines = append(wlines, "  "+w.String())
	}
	sort.Strings(wlines)
	b.WriteString(strings.Join(wlines, "\n") + "\n")

	// Example 4: the protein_distribution integrated view.
	b.WriteString("\n== Example 4: protein_distribution(cerebellum, ryanodine_receptor, rat) ==\n")
	ans, err = m.Query(
		`protein_distribution(cerebellum, "ryanodine_receptor", "rat", Total, N)`,
		"Total", "N")
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(formatRows(ans) + "\n")

	checkGolden(t, "examples", b.String())
}

// TestGoldenTable1 pins the Table 1 compilation: the six GCM
// expression forms in F-logic concrete syntax, their parse back into
// GCM literals, and the FL closure axioms as Datalog.
func TestGoldenTable1(t *testing.T) {
	var b strings.Builder
	b.WriteString("== Table 1: GCM expression forms in F-logic syntax ==\n")
	exprs := []flogic.GCMExpr{
		{Form: "instance", Args: []term.Term{term.Atom("o"), term.Atom("c")}},
		{Form: "subclass", Args: []term.Term{term.Atom("c1"), term.Atom("c2")}},
		{Form: "method", Args: []term.Term{term.Atom("c"), term.Atom("m"), term.Atom("d")}},
		{Form: "methodinst", Args: []term.Term{term.Atom("o"), term.Atom("m"), term.Atom("v")}},
		{Form: "relation", Args: []term.Term{term.Atom("r"),
			term.Atom("a1"), term.Atom("c1"), term.Atom("a2"), term.Atom("c2")}},
		{Form: "relationinst", Args: []term.Term{term.Atom("r"),
			term.Atom("a1"), term.Atom("v1"), term.Atom("a2"), term.Atom("v2")}},
	}
	for _, e := range exprs {
		fl := e.ToFL()
		fmt.Fprintf(&b, "  %-12s %s\n", e.Form, fl)
		// The forms ParseFL understands round-trip into GCM literals.
		switch e.Form {
		case "instance", "subclass", "method", "methodinst":
			lits, err := flogic.ParseFL(fl)
			if err != nil {
				t.Fatalf("ParseFL(%q): %v", fl, err)
			}
			for _, l := range lits {
				fmt.Fprintf(&b, "               = %s\n", l)
			}
		}
	}
	b.WriteString("\n== Table 1: FL closure axioms as Datalog ==\n")
	for _, r := range flogic.Axioms() {
		b.WriteString("  " + r.String() + "\n")
	}
	checkGolden(t, "table1", b.String())
}

// TestGoldenSection5Plan pins the shape of the Section 5 query plan:
// the four-step trace, the bindings, the semantic source selection and
// the distribution roots.
func TestGoldenSection5Plan(t *testing.T) {
	m := goldenMediator(t)
	res, err := m.CalciumBindingProteinQuery("SENSELAB", "rat", "parallel_fiber", "calcium")
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString("== Section 5: calcium-binding protein query plan ==\n")
	for _, step := range res.Trace {
		b.WriteString("  " + step + "\n")
	}
	b.WriteString("\npairs:\n")
	for _, p := range res.Pairs {
		fmt.Fprintf(&b, "  %s / %s\n", p[0], p[1])
	}
	fmt.Fprintf(&b, "sources: %s\n", strings.Join(res.SelectedSources, ", "))
	fmt.Fprintf(&b, "root: %s\n", res.Root)
	fmt.Fprintf(&b, "proteins: %s\n", strings.Join(res.Proteins, ", "))
	for _, p := range res.Proteins {
		if d := res.Distributions[p]; d != nil {
			fmt.Fprintf(&b, "\n%s distribution under %s:\n%s", p, res.Root, d)
		}
	}
	checkGolden(t, "section5_plan", b.String())
}

package modelmed_test

import (
	"strings"
	"testing"

	"modelmed"
	"modelmed/internal/term"
)

// TestPublicAPIWalkthrough exercises the facade the way the README
// documents it: build a domain map, wrap sources, register, view,
// query.
func TestPublicAPIWalkthrough(t *testing.T) {
	dm, err := modelmed.DomainMapFromText("garage", `
		car sub exists has_a.engine.
		engine sub exists has_a.engine_part.
		turbocharger sub engine_part.
	`)
	if err != nil {
		t.Fatal(err)
	}
	med := modelmed.NewMediator(dm, nil)

	repairs := modelmed.NewModel("WORKSHOP")
	repairs.AddClass(&modelmed.Class{Name: "repair", Methods: []modelmed.MethodSig{
		{Name: "component", Result: "string", Anchor: true},
		{Name: "cost", Result: "integer", Scalar: true},
	}})
	repairs.AddObject(modelmed.Object{ID: term.Atom("r1"), Class: "repair",
		Values: map[string][]term.Term{
			"component": {term.Atom("turbocharger")},
			"cost":      {term.Int(1200)},
		}})
	w, err := modelmed.WrapModel(repairs)
	if err != nil {
		t.Fatal(err)
	}
	if err := med.Register(w); err != nil {
		t.Fatal(err)
	}
	if err := med.DefineView(`expensive(O) :- src_val(S, O, cost, C), C > 1000.`); err != nil {
		t.Fatal(err)
	}
	ans, err := med.Query(`expensive(O), anchor('WORKSHOP', O, Comp), dm_down(has_a, engine, Comp)`, "O", "Comp")
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Rows) != 1 || !ans.Rows[0][1].Equal(term.Atom("turbocharger")) {
		t.Fatalf("rows = %v", ans.Rows)
	}
	// Planned path gives the same result.
	planned, plan, err := med.PlannedQuery(`expensive(O), anchor('WORKSHOP', O, Comp), dm_down(has_a, engine, Comp)`, "O", "Comp")
	if err != nil {
		t.Fatal(err)
	}
	if len(planned.Rows) != 1 {
		t.Fatalf("planned rows = %v\ntrace %v", planned.Rows, plan.Trace)
	}
	// Knowledge registration via the DL constructors.
	if err := med.RegisterKnowledge(modelmed.Sub("supercharger", modelmed.C("engine_part"))); err != nil {
		t.Fatal(err)
	}
	if !dm.HasConcept("supercharger") {
		t.Error("registered concept missing")
	}
	// Consistency and provenance round out the API.
	rep, err := med.CheckConsistency(false)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Consistent() {
		t.Errorf("report = %s", rep)
	}
	d, err := med.Explain("expensive", term.Atom("r1"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(d.String(), "src_val") {
		t.Errorf("provenance:\n%s", d)
	}
}

func TestPublicAxiomParsing(t *testing.T) {
	axs, err := modelmed.ParseAxioms("a sub exists r.(b or c).")
	if err != nil || len(axs) != 1 {
		t.Fatalf("axs = %v, err = %v", axs, err)
	}
}
